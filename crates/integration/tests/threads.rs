//! Multi-threading, migration and memory-model semantics across cores:
//! spawn/join, monitors with contention, volatile publication, the
//! native bridges, and annotation-driven migration.

use hera_core::native::install_runtime;
use hera_core::{PlacementPolicy, VmConfig};
use hera_frontend::*;
use hera_integration::run_program;
use hera_isa::{Annotation, ElemTy, ProgramBuilder, Ty, Value};

/// Program: N worker threads each add `reps` times into a shared cell
/// under a lock; main joins them and returns the total.
fn locked_counter_program(workers: i32, reps: i32) -> hera_isa::Program {
    let mut pb = ProgramBuilder::new();
    let api = install_runtime(&mut pb);

    let shared = pb.add_class("Shared", None);
    let fcount = pb.add_field(shared, "count", Ty::Int);

    let worker = pb.add_class("Worker", Some(api.thread_class));
    let fshared = pb.add_field(worker, "shared", Ty::Ref(shared));
    let run = declare_virtual(&mut pb, worker, "run", vec![], None);
    define(
        &mut pb,
        run,
        vec![("this", Ty::Ref(worker))],
        vec![
            Stmt::Let("s".into(), field(local("this"), fshared)),
            for_range(
                "i",
                i32c(0),
                i32c(reps),
                vec![Stmt::Sync(
                    local("s"),
                    vec![Stmt::SetField(
                        local("s"),
                        fcount,
                        add(field(local("s"), fcount), i32c(1)),
                    )],
                )],
            ),
        ],
    )
    .unwrap();

    let main_c = pb.add_class("Main", None);
    let main = declare_static(&mut pb, main_c, "main", vec![], Some(Ty::Int));
    define(
        &mut pb,
        main,
        vec![],
        vec![
            Stmt::Let("s".into(), Expr::New(shared)),
            Stmt::Let("tids".into(), new_array(ElemTy::Int, i32c(workers))),
            for_range(
                "i",
                i32c(0),
                i32c(workers),
                vec![
                    Stmt::Let("w".into(), Expr::New(worker)),
                    Stmt::SetField(local("w"), fshared, local("s")),
                    Stmt::SetIndex(local("tids"), local("i"), call(api.spawn, vec![local("w")])),
                ],
            ),
            for_range(
                "j",
                i32c(0),
                i32c(workers),
                vec![Stmt::Expr(call(
                    api.join,
                    vec![index(local("tids"), local("j"))],
                ))],
            ),
            Stmt::Return(Some(field(local("s"), fcount))),
        ],
    )
    .unwrap();
    pb.finish_with_entry("Main", "main").unwrap()
}

#[test]
fn locked_counter_is_exact_on_ppe() {
    let out = run_program(locked_counter_program(4, 200), VmConfig::pinned_ppe());
    assert!(out.is_clean(), "traps: {:?}", out.traps);
    assert_eq!(out.result, Some(Value::I32(800)));
    assert_eq!(out.stats.threads, 5);
}

#[test]
fn locked_counter_is_exact_across_spe_cores() {
    // The JMM purge/write-back at monitor enter/exit is what makes this
    // correct: each SPE's cached copy of `count` must be refreshed under
    // the lock and published at release.
    let out = run_program(locked_counter_program(6, 150), VmConfig::pinned_spe(6));
    assert!(out.is_clean(), "traps: {:?}", out.traps);
    assert_eq!(out.result, Some(Value::I32(900)));
    assert!(out.stats.contended_acquires > 0, "expected lock contention");
    // Coherence actions really happened.
    assert!(out.stats.data_cache.purges > 0);
    assert!(out.stats.data_cache.writebacks > 0);
}

#[test]
fn unsynchronized_spe_writers_may_lose_updates() {
    // The same program WITHOUT the lock: on SPEs with software caches,
    // lost updates are expected (and allowed by the JMM for racy code).
    // This documents that the simulator really exhibits staleness — the
    // coherence in the locked test is earned, not accidental.
    let mut pb = ProgramBuilder::new();
    let api = install_runtime(&mut pb);
    let shared = pb.add_class("Shared", None);
    let fcount = pb.add_field(shared, "count", Ty::Int);
    let worker = pb.add_class("Worker", Some(api.thread_class));
    let fshared = pb.add_field(worker, "shared", Ty::Ref(shared));
    let run = declare_virtual(&mut pb, worker, "run", vec![], None);
    define(
        &mut pb,
        run,
        vec![("this", Ty::Ref(worker))],
        vec![
            Stmt::Let("s".into(), field(local("this"), fshared)),
            for_range(
                "i",
                i32c(0),
                i32c(500),
                vec![Stmt::SetField(
                    local("s"),
                    fcount,
                    add(field(local("s"), fcount), i32c(1)),
                )],
            ),
        ],
    )
    .unwrap();
    let main_c = pb.add_class("Main", None);
    let main = declare_static(&mut pb, main_c, "main", vec![], Some(Ty::Int));
    define(
        &mut pb,
        main,
        vec![],
        vec![
            Stmt::Let("s".into(), Expr::New(shared)),
            Stmt::Let("w1".into(), Expr::New(worker)),
            Stmt::Let("w2".into(), Expr::New(worker)),
            Stmt::SetField(local("w1"), fshared, local("s")),
            Stmt::SetField(local("w2"), fshared, local("s")),
            Stmt::Let("t1".into(), call(api.spawn, vec![local("w1")])),
            Stmt::Let("t2".into(), call(api.spawn, vec![local("w2")])),
            Stmt::Expr(call(api.join, vec![local("t1")])),
            Stmt::Expr(call(api.join, vec![local("t2")])),
            Stmt::Return(Some(field(local("s"), fcount))),
        ],
    )
    .unwrap();
    let program = pb.finish_with_entry("Main", "main").unwrap();
    let out = run_program(program, VmConfig::pinned_spe(2));
    assert!(out.is_clean());
    let total = out.result.unwrap().as_i32();
    // Racy code: anything between one writer's count and the full total
    // is permissible; full coherence would make this 1000 always.
    assert!((500..=1000).contains(&total), "got {total}");
}

#[test]
fn volatile_flag_publishes_across_spe_cores() {
    // Writer sets data then a volatile flag; reader spins on the flag
    // then reads data. JMM: the read must see the data.
    let mut pb = ProgramBuilder::new();
    let api = install_runtime(&mut pb);
    let shared = pb.add_class("Shared", None);
    let fdata = pb.add_field(shared, "data", Ty::Int);
    let fflag = pb.add_volatile_field(shared, "flag", Ty::Int);

    let writer = pb.add_class("Writer", Some(api.thread_class));
    let wf = pb.add_field(writer, "shared", Ty::Ref(shared));
    let wrun = declare_virtual(&mut pb, writer, "run", vec![], None);
    define(
        &mut pb,
        wrun,
        vec![("this", Ty::Ref(writer))],
        vec![
            Stmt::Let("s".into(), field(local("this"), wf)),
            // A little warm-up delay so the reader really spins.
            Stmt::Let("x".into(), i32c(0)),
            for_range(
                "i",
                i32c(0),
                i32c(2_000),
                vec![Stmt::Assign("x".into(), add(local("x"), i32c(1)))],
            ),
            Stmt::SetField(local("s"), fdata, add(i32c(41), rem(local("x"), i32c(2)))),
            Stmt::SetField(local("s"), fflag, i32c(1)),
        ],
    )
    .unwrap();

    let reader = pb.add_class("Reader", Some(api.thread_class));
    let rf = pb.add_field(reader, "shared", Ty::Ref(shared));
    let rout = pb.add_field(reader, "seen", Ty::Int);
    let rrun = declare_virtual(&mut pb, reader, "run", vec![], None);
    define(
        &mut pb,
        rrun,
        vec![("this", Ty::Ref(reader))],
        vec![
            Stmt::Let("s".into(), field(local("this"), rf)),
            Stmt::While(
                cmp_eq(field(local("s"), fflag), i32c(0)),
                vec![Stmt::Expr(i32c(0))],
            ),
            Stmt::SetField(local("this"), rout, field(local("s"), fdata)),
        ],
    )
    .unwrap();

    let main_c = pb.add_class("Main", None);
    let main = declare_static(&mut pb, main_c, "main", vec![], Some(Ty::Int));
    define(
        &mut pb,
        main,
        vec![],
        vec![
            Stmt::Let("s".into(), Expr::New(shared)),
            Stmt::Let("w".into(), Expr::New(writer)),
            Stmt::Let("r".into(), Expr::New(reader)),
            Stmt::SetField(local("w"), wf, local("s")),
            Stmt::SetField(local("r"), rf, local("s")),
            Stmt::Let("tr".into(), call(api.spawn, vec![local("r")])),
            Stmt::Let("tw".into(), call(api.spawn, vec![local("w")])),
            Stmt::Expr(call(api.join, vec![local("tw")])),
            Stmt::Expr(call(api.join, vec![local("tr")])),
            Stmt::Return(Some(field(local("r"), rout))),
        ],
    )
    .unwrap();
    let program = pb.finish_with_entry("Main", "main").unwrap();
    let out = run_program(program, VmConfig::pinned_spe(2));
    assert!(out.is_clean(), "traps: {:?}", out.traps);
    assert_eq!(
        out.result,
        Some(Value::I32(41)),
        "volatile publication failed"
    );
}

#[test]
fn native_print_and_time_work_from_spe() {
    let mut pb = ProgramBuilder::new();
    let api = install_runtime(&mut pb);
    let main_c = pb.add_class("Main", None);
    let main = declare_static(&mut pb, main_c, "main", vec![], Some(Ty::Int));
    define(
        &mut pb,
        main,
        vec![],
        vec![
            Stmt::Expr(call(api.print_i32, vec![i32c(123)])),
            Stmt::Let("t".into(), call(api.time_millis, vec![])),
            Stmt::Expr(call(api.print_i64, vec![local("t")])),
            Stmt::Return(Some(cast(Ty::Int, local("t")))),
        ],
    )
    .unwrap();
    let program = pb.finish_with_entry("Main", "main").unwrap();
    let out = run_program(program, VmConfig::pinned_spe(1));
    assert!(out.is_clean());
    assert_eq!(out.output[0], "123");
    assert_eq!(out.output.len(), 2);
}

#[test]
fn write_file_native_collects_bytes() {
    let mut pb = ProgramBuilder::new();
    let api = install_runtime(&mut pb);
    let main_c = pb.add_class("Main", None);
    let main = declare_static(&mut pb, main_c, "main", vec![], Some(Ty::Int));
    define(
        &mut pb,
        main,
        vec![],
        vec![
            Stmt::Let("buf".into(), new_array(ElemTy::Byte, i32c(4))),
            Stmt::SetIndex(local("buf"), i32c(0), i32c(72)), // 'H'
            Stmt::SetIndex(local("buf"), i32c(1), i32c(105)), // 'i'
            Stmt::SetIndex(local("buf"), i32c(2), i32c(33)), // '!'
            Stmt::SetIndex(local("buf"), i32c(3), i32c(10)), // newline
            Stmt::Return(Some(call(
                api.write_file,
                vec![i32c(1), local("buf"), i32c(4)],
            ))),
        ],
    )
    .unwrap();
    let program = pb.finish_with_entry("Main", "main").unwrap();
    // From the SPE this is a JNI native: flush + migrate + execute.
    let out = run_program(program, VmConfig::pinned_spe(1));
    assert!(out.is_clean());
    assert_eq!(out.result, Some(Value::I32(4)));
    assert_eq!(out.files.get(&1).map(Vec::as_slice), Some(&b"Hi!\n"[..]));
    // The JNI bridge migrated the thread to the PPE and back.
    assert!(out.stats.migrations >= 2);
}

#[test]
fn annotation_migrates_and_returns_at_marker() {
    let mut pb = ProgramBuilder::new();
    let main_c = pb.add_class("Main", None);
    let hot = declare_static(
        &mut pb,
        main_c,
        "hot",
        vec![("n", Ty::Int)],
        Some(Ty::Float),
    );
    pb.annotate(hot, Annotation::FloatIntensive);
    define(
        &mut pb,
        hot,
        vec![("n", Ty::Int)],
        vec![
            Stmt::Let("x".into(), f32c(1.0)),
            for_range(
                "i",
                i32c(0),
                local("n"),
                vec![Stmt::Assign(
                    "x".into(),
                    add(mul(local("x"), f32c(1.0001)), f32c(0.5)),
                )],
            ),
            Stmt::Return(Some(local("x"))),
        ],
    )
    .unwrap();
    let main = declare_static(&mut pb, main_c, "main", vec![], Some(Ty::Int));
    define(
        &mut pb,
        main,
        vec![],
        vec![
            // Call the annotated method twice; each call migrates to an
            // SPE and transparently returns.
            Stmt::Let("a".into(), call(hot, vec![i32c(2_000)])),
            Stmt::Let("b".into(), call(hot, vec![i32c(2_000)])),
            Stmt::If(
                cmp_eq(cast(Ty::Int, local("a")), cast(Ty::Int, local("b"))),
                vec![Stmt::Return(Some(i32c(1)))],
                vec![Stmt::Return(Some(i32c(0)))],
            ),
        ],
    )
    .unwrap();
    let program = pb.finish_with_entry("Main", "main").unwrap();
    let cfg = VmConfig {
        policy: PlacementPolicy::Annotation,
        ..VmConfig::default()
    };
    let out = run_program(program.clone(), cfg);
    assert!(out.is_clean());
    assert_eq!(out.result, Some(Value::I32(1)));
    // Two round trips = 4 migrations; the method was compiled for the
    // SPE only (plus main for the PPE).
    assert_eq!(out.stats.migrations, 4);
    assert_eq!(out.stats.registry.spe_compilations, 1);
    assert_eq!(out.stats.registry.ppe_compilations, 1);
    assert_eq!(out.stats.registry.dual_compiled, 0);

    // Identical numeric result when everything stays on the PPE.
    let pinned = run_program(program, VmConfig::pinned_ppe());
    assert_eq!(pinned.result, Some(Value::I32(1)));
}

#[test]
fn join_on_finished_thread_is_immediate() {
    let mut pb = ProgramBuilder::new();
    let api = install_runtime(&mut pb);
    let w = pb.add_class("W", Some(api.thread_class));
    let run = declare_virtual(&mut pb, w, "run", vec![], None);
    define(&mut pb, run, vec![("this", Ty::Ref(w))], vec![]).unwrap();
    let main_c = pb.add_class("Main", None);
    let main = declare_static(&mut pb, main_c, "main", vec![], Some(Ty::Int));
    define(
        &mut pb,
        main,
        vec![],
        vec![
            Stmt::Let("t".into(), call(api.spawn, vec![Expr::New(w)])),
            // Burn enough time that the worker certainly finished.
            Stmt::Let("x".into(), i32c(0)),
            for_range(
                "i",
                i32c(0),
                i32c(50_000),
                vec![Stmt::Assign("x".into(), add(local("x"), i32c(1)))],
            ),
            Stmt::Expr(call(api.join, vec![local("t")])),
            Stmt::Expr(call(api.join, vec![local("t")])), // second join: no-op
            Stmt::Return(Some(local("x"))),
        ],
    )
    .unwrap();
    let program = pb.finish_with_entry("Main", "main").unwrap();
    let out = run_program(program, VmConfig::pinned_ppe());
    assert!(out.is_clean());
    assert_eq!(out.result, Some(Value::I32(50_000)));
}
