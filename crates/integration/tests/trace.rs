//! hera-trace integration: well-formedness of real workload traces,
//! byte-exact DMA accounting against the aggregate statistics,
//! migration out/in matching, export validity, and determinism.

use hera_bench::{mixed_program, spe_config, trace_workload};
use hera_core::{HeraJvm, PlacementPolicy, RunOutcome, VmConfig};
use hera_isa::Value;
use hera_trace::{DmaTag, TraceEvent};
use hera_workloads::Workload;

const SCALE: f64 = 0.2;

fn traced_mandelbrot() -> RunOutcome {
    let (out, _) = trace_workload(Workload::Mandelbrot, 6, SCALE, spe_config(6));
    out
}

/// Run the annotated mixed workload (FP phase + memory phase) under the
/// annotation placement policy, which migrates threads between core
/// types at phase boundaries — the trace must record every hop.
fn traced_migratory() -> RunOutcome {
    let (program, expected) = mixed_program(0.1, true);
    let cfg = VmConfig {
        policy: PlacementPolicy::Annotation,
        ..VmConfig::default()
    }
    .with_tracing();
    let vm = HeraJvm::new(program, cfg).expect("constructs");
    let out = vm.run().expect("runs");
    assert!(out.is_clean());
    assert_eq!(out.result, Some(Value::I32(expected)));
    out
}

#[test]
fn mandelbrot_trace_is_well_formed() {
    let out = traced_mandelbrot();
    let trace = &out.trace;
    assert!(trace.is_enabled());
    assert!(trace.event_count() > 0, "traced run produced no events");

    // One lane per core, named by the simulator's convention.
    assert_eq!(trace.lanes().len(), 7);
    assert_eq!(trace.lanes()[0].name, "PPE");
    assert_eq!(trace.lanes()[1].name, "SPE0");
    assert_eq!(trace.lanes()[6].name, "SPE5");

    // Each lane is stamped with its own core's virtual clock, so
    // timestamps are non-decreasing per lane and never exceed that
    // core's final clock.
    for (lane, core_cycles) in trace.lanes().iter().zip(&out.stats.per_core_cycles) {
        let mut prev = 0;
        for e in &lane.events {
            assert!(
                e.at >= prev,
                "lane {} went backwards: {} after {}",
                lane.name,
                e.at,
                prev
            );
            prev = e.at;
        }
        assert!(
            prev <= *core_cycles,
            "lane {} stamped past its core clock",
            lane.name
        );
    }

    // Every method invoke has a matching return (the workload runs to
    // completion with no traps and no migrations mid-frame).
    let mut invokes = 0u64;
    let mut returns = 0u64;
    for (_, e) in trace.iter_all() {
        match e.event {
            TraceEvent::MethodInvoke { .. } => invokes += 1,
            TraceEvent::MethodReturn { .. } => returns += 1,
            _ => {}
        }
    }
    assert!(invokes > 0);
    assert_eq!(invokes, returns);
}

#[test]
fn dma_events_account_for_every_byte() {
    let out = traced_mandelbrot();
    let mut by_tag = std::collections::BTreeMap::new();
    let mut total_bytes = 0u64;
    let mut transfers = 0u64;
    for (_, e) in out.trace.iter_all() {
        if let TraceEvent::Dma { tag, bytes, .. } = e.event {
            *by_tag.entry(tag.label()).or_insert(0u64) += bytes as u64;
            total_bytes += bytes as u64;
            transfers += 1;
        }
    }

    // Per-tag sums equal the caches' own aggregate byte counters…
    let s = &out.stats;
    assert_eq!(
        by_tag
            .get(DmaTag::DataCacheFill.label())
            .copied()
            .unwrap_or(0),
        s.data_cache.bytes_fetched
    );
    assert_eq!(
        by_tag
            .get(DmaTag::DataCacheWriteBack.label())
            .copied()
            .unwrap_or(0),
        s.data_cache.bytes_written_back
    );
    assert_eq!(
        by_tag
            .get(DmaTag::CodeCacheLoad.label())
            .copied()
            .unwrap_or(0),
        s.code_cache.bytes_loaded
    );
    // …and the grand total equals the interconnect's own ledger: every
    // byte that crossed the EIB appears in exactly one trace event.
    assert_eq!(total_bytes, s.bus.bytes_transferred);
    assert_eq!(transfers, s.bus.transfers);
}

#[test]
fn migrations_trace_out_and_in_pairs() {
    let out = traced_migratory();
    assert!(out.stats.migrations > 0, "workload did not migrate");

    // Collect (kind, thread) multisets for both directions, remembering
    // each MigrateOut's announced destination and each MigrateIn's
    // announced origin.
    let mut outs = Vec::new();
    let mut ins = Vec::new();
    for (lane, e) in out.trace.iter_all() {
        match e.event {
            TraceEvent::MigrateOut {
                kind,
                to_lane,
                thread,
            } => {
                outs.push((kind, thread, lane, to_lane as usize));
            }
            TraceEvent::MigrateIn {
                kind,
                from_lane,
                thread,
            } => {
                ins.push((kind, thread, from_lane as usize, lane));
            }
            _ => {}
        }
    }
    assert!(!outs.is_empty());
    // Every departure arrives: identical multisets of
    // (kind, thread, source lane, destination lane).
    let mut a = outs.clone();
    let mut b = ins.clone();
    a.sort();
    b.sort();
    assert_eq!(a, b, "unmatched migration events");
    // The annotation policy produced annotation-marker migrations.
    assert!(outs
        .iter()
        .any(|(k, ..)| *k == hera_trace::MigrationKind::Annotation));
}

#[test]
fn chrome_export_is_valid_json_with_one_track_per_core() {
    let (out, names) = trace_workload(Workload::Mandelbrot, 2, SCALE, spe_config(2));
    let json = hera_trace::chrome_trace_json_with(&out.trace, &|m| {
        names
            .get(m as usize)
            .cloned()
            .unwrap_or_else(|| format!("m{m}"))
    });

    assert_json_well_formed(&json);
    assert!(json.starts_with("{\"displayTimeUnit\":\"ns\",\"traceEvents\":["));
    assert!(json.ends_with("]}"));
    // One thread_name metadata record per core lane.
    for name in ["PPE", "SPE0", "SPE1"] {
        let meta = "\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1".to_string();
        assert!(json.contains(&meta));
        assert!(
            json.contains(&format!("\"args\":{{\"name\":\"{name}\"}}")),
            "missing track metadata for {name}"
        );
    }
    // Method names were symbolised into the duration events.
    assert!(json.contains("\"ph\":\"B\""));
    assert!(json.contains("\"ph\":\"E\""));
}

/// A tiny structural JSON validator: tracks string/escape state and a
/// bracket stack. Catches unbalanced structure and unescaped quotes —
/// the failure modes a hand-rolled exporter can realistically have.
fn assert_json_well_formed(s: &str) {
    let mut stack = Vec::new();
    let mut in_str = false;
    let mut escaped = false;
    for c in s.chars() {
        if in_str {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_str = false;
            } else {
                assert!(c >= ' ', "raw control character inside JSON string");
            }
            continue;
        }
        match c {
            '"' => in_str = true,
            '{' | '[' => stack.push(c),
            '}' => assert_eq!(stack.pop(), Some('{'), "unbalanced }}"),
            ']' => assert_eq!(stack.pop(), Some('['), "unbalanced ]"),
            _ => {}
        }
    }
    assert!(!in_str, "unterminated string");
    assert!(stack.is_empty(), "unclosed brackets: {stack:?}");
}

#[test]
fn identical_runs_produce_identical_traces() {
    let a = traced_mandelbrot();
    let b = traced_mandelbrot();
    assert_eq!(a.trace, b.trace, "trace is not deterministic");

    let c = traced_migratory();
    let d = traced_migratory();
    assert_eq!(c.trace, d.trace, "migratory trace is not deterministic");
}

#[test]
fn tracing_never_charges_virtual_cycles() {
    let (traced, _) = trace_workload(Workload::Mandelbrot, 6, SCALE, spe_config(6));
    let untraced = hera_bench::run_workload(Workload::Mandelbrot, 6, SCALE, spe_config(6));
    assert_eq!(traced.stats.wall_cycles, untraced.stats.wall_cycles);
    assert_eq!(traced.stats.per_core_cycles, untraced.stats.per_core_cycles);
    assert_eq!(
        traced.stats.bus.bytes_transferred,
        untraced.stats.bus.bytes_transferred
    );
    assert!(untraced.trace.lanes().is_empty());
    assert!(!untraced.trace.is_enabled());
}

#[test]
fn metrics_registry_subsumes_aggregate_stats() {
    let out = traced_mandelbrot();
    let m = &out.trace.metrics;
    // The end-of-run aggregates are overlaid onto the same registry the
    // event hooks populate, so both views agree by construction.
    assert_eq!(m.counter("run.wall_cycles"), out.stats.wall_cycles);
    assert_eq!(
        m.counter("dcache.bytes_fetched"),
        out.stats.data_cache.bytes_fetched
    );
    assert_eq!(
        m.counter("ccache.bytes_loaded"),
        out.stats.code_cache.bytes_loaded
    );
    assert_eq!(m.counter("bus.transfers"), out.stats.bus.transfers);
    // Event-side accumulation also ran: the DMA histogram matches the
    // transfer count exactly.
    let h = m.histogram("dma.bytes").expect("dma histogram recorded");
    assert_eq!(h.count, out.stats.bus.transfers);
    assert_eq!(h.sum, out.stats.bus.bytes_transferred);
}
