//! The correctness anchor: every benchmark's guest checksum must equal
//! the host reference bit-for-bit, on every core kind and thread count.

use hera_core::VmConfig;
use hera_integration::run_program;
use hera_isa::Value;
use hera_workloads::{kernels, Workload};

fn check(w: Workload, threads: u32, scale: f64, cfg: VmConfig) {
    let (program, expected) = w.build(threads, scale);
    let out = run_program(program, cfg);
    assert!(out.is_clean(), "{}: traps {:?}", w.name(), out.traps);
    assert_eq!(
        out.result,
        Some(Value::I32(expected)),
        "{} (threads={threads}, scale={scale}) checksum mismatch",
        w.name()
    );
}

#[test]
fn mandelbrot_matches_reference_on_ppe() {
    check(Workload::Mandelbrot, 2, 0.2, VmConfig::pinned_ppe());
}

#[test]
fn mandelbrot_matches_reference_on_spes() {
    check(Workload::Mandelbrot, 4, 0.2, VmConfig::pinned_spe(4));
}

#[test]
fn compress_matches_reference_on_ppe() {
    check(Workload::Compress, 2, 0.2, VmConfig::pinned_ppe());
}

#[test]
fn compress_matches_reference_on_spes() {
    check(Workload::Compress, 3, 0.2, VmConfig::pinned_spe(3));
}

#[test]
fn mpegaudio_matches_reference_on_ppe() {
    check(Workload::MpegAudio, 2, 0.2, VmConfig::pinned_ppe());
}

#[test]
fn mpegaudio_matches_reference_on_spes() {
    check(Workload::MpegAudio, 3, 0.2, VmConfig::pinned_spe(3));
}

#[test]
fn single_threaded_variants_match_too() {
    for w in Workload::ALL {
        check(w, 1, 0.1, VmConfig::pinned_ppe());
        check(w, 1, 0.1, VmConfig::pinned_spe(1));
    }
}

#[test]
fn results_are_identical_across_core_kinds() {
    // Transparency: the checksum must not depend on placement at all.
    for w in Workload::ALL {
        let (p1, _) = w.build(2, 0.15);
        let a = run_program(p1, VmConfig::pinned_ppe());
        let (p2, _) = w.build(2, 0.15);
        let b = run_program(p2, VmConfig::pinned_spe(2));
        assert_eq!(a.result, b.result, "{}", w.name());
    }
}

#[test]
fn kernels_match_references() {
    let out = run_program(kernels::matmul_program(10), VmConfig::pinned_spe(1));
    assert_eq!(out.result, Some(Value::I32(kernels::matmul_reference(10))));
    let out = run_program(kernels::sieve_program(2000), VmConfig::pinned_ppe());
    assert_eq!(out.result, Some(Value::I32(kernels::sieve_reference(2000))));
}

#[test]
fn workload_shapes_show_expected_cache_behaviour() {
    // compress must have a materially lower SPE data-cache hit rate than
    // mpegaudio (Figure 6's separation).
    let (cp, _) = Workload::Compress.build(1, 0.3);
    let compress = run_program(cp, VmConfig::pinned_spe(1));
    let (mp, _) = Workload::MpegAudio.build(1, 0.3);
    let mpeg = run_program(mp, VmConfig::pinned_spe(1));
    let ch = compress.stats.data_cache.hit_rate();
    let mh = mpeg.stats.data_cache.hit_rate();
    assert!(
        ch < mh,
        "compress hit rate {ch:.3} should be below mpegaudio {mh:.3}"
    );
}
