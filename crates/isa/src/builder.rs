//! A fluent bytecode builder with forward-reference label patching.

use crate::bytecode::{Cond, Instr};
use crate::program::{ClassId, FieldId, MethodId};
use crate::types::ElemTy;

/// An as-yet-unpatched branch target.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Label(usize);

/// Builds an instruction vector, resolving [`Label`]s to absolute
/// instruction indices when [`MethodBuilder::finish`] is called.
///
/// # Examples
///
/// Count down from 10:
///
/// ```
/// use hera_isa::{MethodBuilder, Cond};
///
/// let mut b = MethodBuilder::new();
/// let top = b.label();
/// b.const_i32(10).store(0);
/// b.place(top);
/// b.load(0).const_i32(1).isub().store(0);
/// b.load(0).if_i(Cond::Gt, top);
/// b.load(0).return_value();
/// let code = b.finish();
/// assert!(!code.is_empty());
/// ```
pub struct MethodBuilder {
    code: Vec<Instr>,
    /// For each label: the instruction index it resolves to (if placed).
    labels: Vec<Option<u32>>,
    /// (instruction index, label) pairs awaiting patching.
    fixups: Vec<(usize, Label)>,
}

impl MethodBuilder {
    /// Create an empty builder.
    pub fn new() -> Self {
        MethodBuilder {
            code: Vec::new(),
            labels: Vec::new(),
            fixups: Vec::new(),
        }
    }

    /// Allocate a fresh, unplaced label.
    pub fn label(&mut self) -> Label {
        let l = Label(self.labels.len());
        self.labels.push(None);
        l
    }

    /// Place a label at the current position. Panics if already placed.
    pub fn place(&mut self, l: Label) -> &mut Self {
        assert!(
            self.labels[l.0].is_none(),
            "label placed twice at instruction {}",
            self.code.len()
        );
        self.labels[l.0] = Some(self.code.len() as u32);
        self
    }

    /// Current instruction index (useful for diagnostics).
    pub fn here(&self) -> u32 {
        self.code.len() as u32
    }

    /// Append a raw instruction.
    pub fn emit(&mut self, i: Instr) -> &mut Self {
        self.code.push(i);
        self
    }

    fn emit_branch(&mut self, i: Instr, l: Label) -> &mut Self {
        self.fixups.push((self.code.len(), l));
        self.code.push(i);
        self
    }

    // ---- constants ----

    /// Push an i32 constant.
    pub fn const_i32(&mut self, v: i32) -> &mut Self {
        self.emit(Instr::ConstI32(v))
    }
    /// Push an i64 constant.
    pub fn const_i64(&mut self, v: i64) -> &mut Self {
        self.emit(Instr::ConstI64(v))
    }
    /// Push an f32 constant.
    pub fn const_f32(&mut self, v: f32) -> &mut Self {
        self.emit(Instr::ConstF32(v))
    }
    /// Push an f64 constant.
    pub fn const_f64(&mut self, v: f64) -> &mut Self {
        self.emit(Instr::ConstF64(v))
    }
    /// Push null.
    pub fn const_null(&mut self) -> &mut Self {
        self.emit(Instr::ConstNull)
    }

    // ---- stack ----

    /// Pop the top of stack.
    pub fn pop(&mut self) -> &mut Self {
        self.emit(Instr::Pop)
    }
    /// Duplicate the top of stack.
    pub fn dup(&mut self) -> &mut Self {
        self.emit(Instr::Dup)
    }
    /// Duplicate the top of stack under the second element.
    pub fn dup_x1(&mut self) -> &mut Self {
        self.emit(Instr::DupX1)
    }
    /// Swap the top two stack values.
    pub fn swap(&mut self) -> &mut Self {
        self.emit(Instr::Swap)
    }

    // ---- locals ----

    /// Load local `slot`.
    pub fn load(&mut self, slot: u16) -> &mut Self {
        self.emit(Instr::Load(slot))
    }
    /// Store into local `slot`.
    pub fn store(&mut self, slot: u16) -> &mut Self {
        self.emit(Instr::Store(slot))
    }
    /// Increment integer local `slot` by `delta`.
    pub fn iinc(&mut self, slot: u16, delta: i16) -> &mut Self {
        self.emit(Instr::IInc(slot, delta))
    }

    // ---- arithmetic (thin wrappers; names mirror the instructions) ----

    /// i32 add.
    pub fn iadd(&mut self) -> &mut Self {
        self.emit(Instr::IAdd)
    }
    /// i32 subtract.
    pub fn isub(&mut self) -> &mut Self {
        self.emit(Instr::ISub)
    }
    /// i32 multiply.
    pub fn imul(&mut self) -> &mut Self {
        self.emit(Instr::IMul)
    }
    /// i32 divide.
    pub fn idiv(&mut self) -> &mut Self {
        self.emit(Instr::IDiv)
    }
    /// i32 remainder.
    pub fn irem(&mut self) -> &mut Self {
        self.emit(Instr::IRem)
    }
    /// i32 and.
    pub fn iand(&mut self) -> &mut Self {
        self.emit(Instr::IAnd)
    }
    /// i32 or.
    pub fn ior(&mut self) -> &mut Self {
        self.emit(Instr::IOr)
    }
    /// i32 xor.
    pub fn ixor(&mut self) -> &mut Self {
        self.emit(Instr::IXor)
    }
    /// i32 shift left.
    pub fn ishl(&mut self) -> &mut Self {
        self.emit(Instr::IShl)
    }
    /// i32 arithmetic shift right.
    pub fn ishr(&mut self) -> &mut Self {
        self.emit(Instr::IShr)
    }
    /// i32 logical shift right.
    pub fn iushr(&mut self) -> &mut Self {
        self.emit(Instr::IUShr)
    }
    /// f32 add.
    pub fn fadd(&mut self) -> &mut Self {
        self.emit(Instr::FAdd)
    }
    /// f32 subtract.
    pub fn fsub(&mut self) -> &mut Self {
        self.emit(Instr::FSub)
    }
    /// f32 multiply.
    pub fn fmul(&mut self) -> &mut Self {
        self.emit(Instr::FMul)
    }
    /// f32 divide.
    pub fn fdiv(&mut self) -> &mut Self {
        self.emit(Instr::FDiv)
    }
    /// f64 add.
    pub fn dadd(&mut self) -> &mut Self {
        self.emit(Instr::DAdd)
    }
    /// f64 subtract.
    pub fn dsub(&mut self) -> &mut Self {
        self.emit(Instr::DSub)
    }
    /// f64 multiply.
    pub fn dmul(&mut self) -> &mut Self {
        self.emit(Instr::DMul)
    }
    /// f64 divide.
    pub fn ddiv(&mut self) -> &mut Self {
        self.emit(Instr::DDiv)
    }

    // ---- control flow ----

    /// Unconditional jump to a label.
    pub fn goto(&mut self, l: Label) -> &mut Self {
        self.emit_branch(Instr::Goto(u32::MAX), l)
    }
    /// Branch if popped i32 satisfies `cond` against zero.
    pub fn if_i(&mut self, cond: Cond, l: Label) -> &mut Self {
        self.emit_branch(Instr::IfI(cond, u32::MAX), l)
    }
    /// Branch comparing two popped i32s.
    pub fn if_icmp(&mut self, cond: Cond, l: Label) -> &mut Self {
        self.emit_branch(Instr::IfICmp(cond, u32::MAX), l)
    }
    /// Branch if popped reference is null.
    pub fn if_null(&mut self, l: Label) -> &mut Self {
        self.emit_branch(Instr::IfNull(u32::MAX), l)
    }
    /// Branch if popped reference is non-null.
    pub fn if_non_null(&mut self, l: Label) -> &mut Self {
        self.emit_branch(Instr::IfNonNull(u32::MAX), l)
    }

    // ---- objects / arrays ----

    /// Allocate an object.
    pub fn new_object(&mut self, c: ClassId) -> &mut Self {
        self.emit(Instr::New(c))
    }
    /// Load an instance field.
    pub fn get_field(&mut self, f: FieldId) -> &mut Self {
        self.emit(Instr::GetField(f))
    }
    /// Store an instance field.
    pub fn put_field(&mut self, f: FieldId) -> &mut Self {
        self.emit(Instr::PutField(f))
    }
    /// Load a static field.
    pub fn get_static(&mut self, f: FieldId) -> &mut Self {
        self.emit(Instr::GetStatic(f))
    }
    /// Store a static field.
    pub fn put_static(&mut self, f: FieldId) -> &mut Self {
        self.emit(Instr::PutStatic(f))
    }
    /// Allocate an array (length on stack).
    pub fn new_array(&mut self, e: ElemTy) -> &mut Self {
        self.emit(Instr::NewArray(e))
    }
    /// Push array length.
    pub fn array_length(&mut self) -> &mut Self {
        self.emit(Instr::ArrayLength)
    }
    /// Load an array element.
    pub fn aload(&mut self, e: ElemTy) -> &mut Self {
        self.emit(Instr::ALoad(e))
    }
    /// Store an array element.
    pub fn astore(&mut self, e: ElemTy) -> &mut Self {
        self.emit(Instr::AStore(e))
    }

    // ---- calls ----

    /// Direct call.
    pub fn invoke_static(&mut self, m: MethodId) -> &mut Self {
        self.emit(Instr::InvokeStatic(m))
    }
    /// Virtual call through the receiver's vtable.
    pub fn invoke_virtual(&mut self, m: MethodId) -> &mut Self {
        self.emit(Instr::InvokeVirtual(m))
    }
    /// Return void.
    pub fn return_void(&mut self) -> &mut Self {
        self.emit(Instr::Return)
    }
    /// Return the top of stack.
    pub fn return_value(&mut self) -> &mut Self {
        self.emit(Instr::ReturnValue)
    }

    // ---- sync ----

    /// Acquire the monitor of the popped object.
    pub fn monitor_enter(&mut self) -> &mut Self {
        self.emit(Instr::MonitorEnter)
    }
    /// Release the monitor of the popped object.
    pub fn monitor_exit(&mut self) -> &mut Self {
        self.emit(Instr::MonitorExit)
    }

    /// Register the most recently emitted instruction — which must be a
    /// branch — to be patched to label `l` at finish time. Lets callers
    /// emit branch shapes the fluent API lacks (e.g. `IfACmpEq`) and
    /// still use label resolution.
    pub fn retarget_last_branch(&mut self, l: Label) {
        let idx = self
            .code
            .len()
            .checked_sub(1)
            .expect("retarget on empty builder");
        assert!(
            self.code[idx].branch_target().is_some(),
            "last instruction is not a branch"
        );
        self.fixups.push((idx, l));
    }

    /// Resolve all labels and return the instruction vector.
    ///
    /// # Panics
    ///
    /// Panics if a referenced label was never placed — that is a host
    /// program bug (malformed builder usage), not a guest error.
    pub fn finish(self) -> Vec<Instr> {
        let MethodBuilder {
            mut code,
            labels,
            fixups,
        } = self;
        for (idx, l) in fixups {
            let target = labels[l.0].unwrap_or_else(|| panic!("unplaced label in branch @{idx}"));
            code[idx] = code[idx].with_target(target);
        }
        code
    }
}

impl Default for MethodBuilder {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_and_backward_labels_patch() {
        let mut b = MethodBuilder::new();
        let fwd = b.label();
        let back = b.label();
        b.place(back);
        b.const_i32(0);
        b.if_i(Cond::Eq, fwd);
        b.goto(back);
        b.place(fwd);
        b.return_void();
        let code = b.finish();
        assert_eq!(code[1], Instr::IfI(Cond::Eq, 3));
        assert_eq!(code[2], Instr::Goto(0));
        assert_eq!(code[3], Instr::Return);
    }

    #[test]
    #[should_panic(expected = "unplaced label")]
    fn unplaced_label_panics() {
        let mut b = MethodBuilder::new();
        let l = b.label();
        b.goto(l);
        let _ = b.finish();
    }

    #[test]
    #[should_panic(expected = "label placed twice")]
    fn double_placement_panics() {
        let mut b = MethodBuilder::new();
        let l = b.label();
        b.place(l);
        b.const_i32(0);
        b.place(l);
    }

    #[test]
    fn fluent_chain_builds_expected_sequence() {
        let mut b = MethodBuilder::new();
        b.const_i32(2).const_i32(3).iadd().return_value();
        let code = b.finish();
        assert_eq!(
            code,
            vec![
                Instr::ConstI32(2),
                Instr::ConstI32(3),
                Instr::IAdd,
                Instr::ReturnValue
            ]
        );
    }

    #[test]
    fn here_reports_position() {
        let mut b = MethodBuilder::new();
        assert_eq!(b.here(), 0);
        b.const_i32(1);
        assert_eq!(b.here(), 1);
    }
}
