//! The guest instruction set and runtime trap vocabulary.

use crate::program::{ClassId, FieldId, MethodId};
use crate::types::ElemTy;
use std::fmt;

/// Comparison conditions used by conditional branches.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Cond {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than (signed).
    Lt,
    /// Greater or equal (signed).
    Ge,
    /// Greater than (signed).
    Gt,
    /// Less or equal (signed).
    Le,
}

impl Cond {
    /// Evaluate the condition on an `i32` (compared against zero for the
    /// single-operand branch forms).
    #[inline]
    pub fn eval(self, v: i32) -> bool {
        match self {
            Cond::Eq => v == 0,
            Cond::Ne => v != 0,
            Cond::Lt => v < 0,
            Cond::Ge => v >= 0,
            Cond::Gt => v > 0,
            Cond::Le => v <= 0,
        }
    }

    /// Evaluate the condition on a pair of `i32`s.
    #[inline]
    pub fn eval2(self, a: i32, b: i32) -> bool {
        match self {
            Cond::Eq => a == b,
            Cond::Ne => a != b,
            Cond::Lt => a < b,
            Cond::Ge => a >= b,
            Cond::Gt => a > b,
            Cond::Le => a <= b,
        }
    }

    /// The negated condition.
    pub fn negate(self) -> Cond {
        match self {
            Cond::Eq => Cond::Ne,
            Cond::Ne => Cond::Eq,
            Cond::Lt => Cond::Ge,
            Cond::Ge => Cond::Lt,
            Cond::Gt => Cond::Le,
            Cond::Le => Cond::Gt,
        }
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Cond::Eq => "eq",
            Cond::Ne => "ne",
            Cond::Lt => "lt",
            Cond::Ge => "ge",
            Cond::Gt => "gt",
            Cond::Le => "le",
        };
        write!(f, "{s}")
    }
}

/// A portable guest instruction.
///
/// Branch targets are absolute instruction indices within the method
/// (the [`crate::builder::MethodBuilder`] patches labels into indices).
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Instr {
    // ---- constants and stack manipulation ----
    /// Push a 32-bit integer constant.
    ConstI32(i32),
    /// Push a 64-bit integer constant.
    ConstI64(i64),
    /// Push a 32-bit float constant.
    ConstF32(f32),
    /// Push a 64-bit float constant.
    ConstF64(f64),
    /// Push the null reference.
    ConstNull,
    /// Discard the top of stack.
    Pop,
    /// Duplicate the top of stack.
    Dup,
    /// Duplicate the top of stack below the second value (`a b` → `b a b`).
    DupX1,
    /// Swap the top two stack values.
    Swap,

    // ---- locals ----
    /// Push local variable `slot`.
    Load(u16),
    /// Pop into local variable `slot`.
    Store(u16),
    /// Add `delta` to the integer in local `slot` (like JVM `iinc`).
    IInc(u16, i16),

    // ---- i32 arithmetic ----
    /// Integer add (wrapping).
    IAdd,
    /// Integer subtract (wrapping).
    ISub,
    /// Integer multiply (wrapping).
    IMul,
    /// Integer divide; traps on divide-by-zero.
    IDiv,
    /// Integer remainder; traps on divide-by-zero.
    IRem,
    /// Integer negate.
    INeg,
    /// Shift left (masked count, as the JVM does).
    IShl,
    /// Arithmetic shift right.
    IShr,
    /// Logical shift right.
    IUShr,
    /// Bitwise and.
    IAnd,
    /// Bitwise or.
    IOr,
    /// Bitwise xor.
    IXor,

    // ---- i64 arithmetic ----
    /// Long add (wrapping).
    LAdd,
    /// Long subtract (wrapping).
    LSub,
    /// Long multiply (wrapping).
    LMul,
    /// Long divide; traps on divide-by-zero.
    LDiv,
    /// Long remainder; traps on divide-by-zero.
    LRem,
    /// Long negate.
    LNeg,
    /// Long shift left (count from an i32, masked).
    LShl,
    /// Long arithmetic shift right.
    LShr,
    /// Long logical shift right.
    LUShr,
    /// Long bitwise and.
    LAnd,
    /// Long bitwise or.
    LOr,
    /// Long bitwise xor.
    LXor,

    // ---- f32 arithmetic ----
    /// Float add.
    FAdd,
    /// Float subtract.
    FSub,
    /// Float multiply.
    FMul,
    /// Float divide.
    FDiv,
    /// Float negate.
    FNeg,
    /// Float square root (intrinsic; see crate docs).
    FSqrt,

    // ---- f64 arithmetic ----
    /// Double add.
    DAdd,
    /// Double subtract.
    DSub,
    /// Double multiply.
    DMul,
    /// Double divide.
    DDiv,
    /// Double negate.
    DNeg,
    /// Double square root (intrinsic; see crate docs).
    DSqrt,

    // ---- conversions ----
    /// i32 → i64.
    I2L,
    /// i32 → f32.
    I2F,
    /// i32 → f64.
    I2D,
    /// i64 → i32 (truncating).
    L2I,
    /// i64 → f32.
    L2F,
    /// i64 → f64.
    L2D,
    /// f32 → i32 (saturating, JVM semantics).
    F2I,
    /// f32 → f64.
    F2D,
    /// f64 → i32 (saturating, JVM semantics).
    D2I,
    /// f64 → i64 (saturating, JVM semantics).
    D2L,
    /// f64 → f32.
    D2F,
    /// i32 → i8 sign-extended back to i32.
    I2B,
    /// i32 → i16 sign-extended back to i32.
    I2S,

    // ---- comparisons producing an i32 ----
    /// Long compare: push -1/0/1.
    LCmp,
    /// Float compare, NaN → -1.
    FCmpL,
    /// Float compare, NaN → 1.
    FCmpG,
    /// Double compare, NaN → -1.
    DCmpL,
    /// Double compare, NaN → 1.
    DCmpG,

    // ---- control flow ----
    /// Unconditional branch to instruction index.
    Goto(u32),
    /// Branch if the popped i32 satisfies `cond` against zero.
    IfI(Cond, u32),
    /// Branch if the two popped i32s (`a cond b`, `b` on top) satisfy `cond`.
    IfICmp(Cond, u32),
    /// Branch if the popped reference is null.
    IfNull(u32),
    /// Branch if the popped reference is non-null.
    IfNonNull(u32),
    /// Branch if the two popped references are equal.
    IfACmpEq(u32),
    /// Branch if the two popped references differ.
    IfACmpNe(u32),

    // ---- objects ----
    /// Allocate a new instance of `ClassId`, push the reference.
    New(ClassId),
    /// Pop a reference, push the value of the instance field.
    GetField(FieldId),
    /// Pop a value and a reference, store into the instance field.
    PutField(FieldId),
    /// Push the value of a static field.
    GetStatic(FieldId),
    /// Pop a value into a static field.
    PutStatic(FieldId),
    /// Pop a reference, push 1 if it is an instance of the class (or a
    /// subclass), else 0. Null yields 0.
    InstanceOf(ClassId),

    // ---- arrays ----
    /// Pop a length, allocate an array of the element type, push the ref.
    NewArray(ElemTy),
    /// Pop an array reference, push its length.
    ArrayLength,
    /// Pop index and array reference, push the element.
    ALoad(ElemTy),
    /// Pop value, index and array reference, store the element.
    AStore(ElemTy),

    // ---- calls ----
    /// Call a method directly (static methods and constructors).
    InvokeStatic(MethodId),
    /// Call through the receiver's vtable. The `MethodId` names the
    /// statically resolved method, whose vtable slot is used.
    InvokeVirtual(MethodId),
    /// Return void from the current method.
    Return,
    /// Return the top-of-stack value from the current method.
    ReturnValue,

    // ---- synchronisation ----
    /// Pop an object reference and acquire its monitor. On the SPE this
    /// purges the software data cache after acquisition (JMM, §3.2.1).
    MonitorEnter,
    /// Pop an object reference and release its monitor. On the SPE this
    /// writes back dirty cached data before release (JMM, §3.2.1).
    MonitorExit,
}

impl Instr {
    /// Branch target of this instruction, if it is a branch.
    pub fn branch_target(self) -> Option<u32> {
        match self {
            Instr::Goto(t)
            | Instr::IfI(_, t)
            | Instr::IfICmp(_, t)
            | Instr::IfNull(t)
            | Instr::IfNonNull(t)
            | Instr::IfACmpEq(t)
            | Instr::IfACmpNe(t) => Some(t),
            _ => None,
        }
    }

    /// Whether control never falls through to the next instruction.
    pub fn is_terminator(self) -> bool {
        matches!(self, Instr::Goto(_) | Instr::Return | Instr::ReturnValue)
    }

    /// Rewrite the branch target (used by the builder's label patcher).
    pub(crate) fn with_target(self, t: u32) -> Instr {
        match self {
            Instr::Goto(_) => Instr::Goto(t),
            Instr::IfI(c, _) => Instr::IfI(c, t),
            Instr::IfICmp(c, _) => Instr::IfICmp(c, t),
            Instr::IfNull(_) => Instr::IfNull(t),
            Instr::IfNonNull(_) => Instr::IfNonNull(t),
            Instr::IfACmpEq(_) => Instr::IfACmpEq(t),
            Instr::IfACmpNe(_) => Instr::IfACmpNe(t),
            other => other,
        }
    }
}

/// Runtime faults. These terminate the faulting guest thread (the ISA has
/// no catchable exceptions; see the crate-level divergence notes).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Trap {
    /// Null reference dereferenced.
    NullPointer,
    /// Array index out of range `[0, len)`.
    ArrayIndexOutOfBounds {
        /// The offending index.
        index: i32,
        /// The array length.
        len: u32,
    },
    /// Integer or long division / remainder by zero.
    DivisionByZero,
    /// Array allocation with a negative length.
    NegativeArraySize(i32),
    /// Heap exhausted even after garbage collection.
    OutOfMemory,
    /// Monitor released by a thread that does not own it.
    IllegalMonitorState,
    /// A native method reported an error.
    NativeError(String),
    /// The simulated machine lost the thread's data: an MFC transfer
    /// failed past its retry budget (injected fault, unrecoverable).
    MachineCheck(String),
}

impl fmt::Display for Trap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Trap::NullPointer => write!(f, "null pointer dereference"),
            Trap::ArrayIndexOutOfBounds { index, len } => {
                write!(f, "array index {index} out of bounds for length {len}")
            }
            Trap::DivisionByZero => write!(f, "division by zero"),
            Trap::NegativeArraySize(n) => write!(f, "negative array size {n}"),
            Trap::OutOfMemory => write!(f, "out of memory"),
            Trap::IllegalMonitorState => write!(f, "illegal monitor state"),
            Trap::NativeError(msg) => write!(f, "native error: {msg}"),
            Trap::MachineCheck(msg) => write!(f, "machine check: {msg}"),
        }
    }
}

impl std::error::Error for Trap {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cond_eval_against_zero() {
        assert!(Cond::Eq.eval(0));
        assert!(!Cond::Eq.eval(3));
        assert!(Cond::Ne.eval(-1));
        assert!(Cond::Lt.eval(-1));
        assert!(!Cond::Lt.eval(0));
        assert!(Cond::Ge.eval(0));
        assert!(Cond::Gt.eval(5));
        assert!(Cond::Le.eval(0));
        assert!(!Cond::Le.eval(1));
    }

    #[test]
    fn cond_eval_pairs() {
        assert!(Cond::Lt.eval2(1, 2));
        assert!(!Cond::Lt.eval2(2, 2));
        assert!(Cond::Ge.eval2(2, 2));
        assert!(Cond::Eq.eval2(-4, -4));
        assert!(Cond::Ne.eval2(1, 0));
        assert!(Cond::Gt.eval2(3, 2));
        assert!(Cond::Le.eval2(2, 2));
    }

    #[test]
    fn cond_negation_is_involutive() {
        for c in [Cond::Eq, Cond::Ne, Cond::Lt, Cond::Ge, Cond::Gt, Cond::Le] {
            assert_eq!(c.negate().negate(), c);
            // negation flips the outcome for every input
            for v in [-2, -1, 0, 1, 2] {
                assert_ne!(c.eval(v), c.negate().eval(v));
            }
        }
    }

    #[test]
    fn branch_targets() {
        assert_eq!(Instr::Goto(7).branch_target(), Some(7));
        assert_eq!(Instr::IfI(Cond::Eq, 3).branch_target(), Some(3));
        assert_eq!(Instr::IAdd.branch_target(), None);
        assert_eq!(Instr::IfNull(9).branch_target(), Some(9));
    }

    #[test]
    fn terminators() {
        assert!(Instr::Goto(0).is_terminator());
        assert!(Instr::Return.is_terminator());
        assert!(Instr::ReturnValue.is_terminator());
        assert!(!Instr::IfI(Cond::Eq, 0).is_terminator());
        assert!(!Instr::IAdd.is_terminator());
    }

    #[test]
    fn with_target_rewrites_branches_only() {
        assert_eq!(Instr::Goto(1).with_target(5), Instr::Goto(5));
        assert_eq!(
            Instr::IfICmp(Cond::Lt, 1).with_target(5),
            Instr::IfICmp(Cond::Lt, 5)
        );
        assert_eq!(Instr::IAdd.with_target(5), Instr::IAdd);
    }

    #[test]
    fn trap_display() {
        assert_eq!(
            Trap::ArrayIndexOutOfBounds { index: 9, len: 4 }.to_string(),
            "array index 9 out of bounds for length 4"
        );
        assert_eq!(Trap::DivisionByZero.to_string(), "division by zero");
    }
}
