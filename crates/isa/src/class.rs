//! Class, field and method metadata: the guest program's static shape.

use crate::bytecode::Instr;
use crate::program::{ClassId, FieldId, MethodId};
use crate::types::Ty;

/// Identifier of a native (host-implemented) method registered with the
/// runtime's native bridge (paper §3.2.3).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct NativeId(pub u32);

/// Platform-neutral behavioural annotations (paper §3).
///
/// "Our approach is to provide the developer with a set of annotations
/// that can enhance an application with platform-neutral hints of its
/// expected behaviour." The runtime maps these hints to thread placement
/// decisions; they never name a concrete architecture's details, only
/// behaviour classes plus two explicit placement escapes used for
/// benchmarking.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Annotation {
    /// The method performs heavy floating-point computation.
    FloatIntensive,
    /// The method touches main memory with poor locality.
    MemoryIntensive,
    /// Explicitly request execution on an accelerator (SPE) core.
    RunOnSpe,
    /// Explicitly request execution on the general-purpose (PPE) core.
    RunOnPpe,
}

/// How a method's behaviour is supplied.
#[derive(Clone, PartialEq, Debug)]
pub enum MethodBody {
    /// Portable bytecode, JIT-compiled per core type on first use there.
    Bytecode(Vec<Instr>),
    /// A host-implemented native method. On an SPE core this is executed
    /// via the native bridge: JNI-style natives migrate the thread to the
    /// PPE; fast syscalls are proxied by the PPE service thread (§3.2.3).
    Native(NativeId),
}

/// Whether a native method uses the JNI path (thread migration to the
/// PPE) or the fast-syscall path (message to the PPE proxy thread).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NativeKind {
    /// Full JNI call: the thread migrates to the PPE for the duration.
    Jni,
    /// Runtime-internal fast syscall: proxied by the dedicated PPE
    /// service thread while the SPE thread waits.
    FastSyscall,
}

/// A field definition. Layout (offsets) is computed by `hera-mem` from
/// the declaration order; the ISA records only declaration facts.
#[derive(Clone, PartialEq, Debug)]
pub struct FieldDef {
    /// Field name (unique within its class, per kind).
    pub name: String,
    /// Declaring class.
    pub class: ClassId,
    /// Declared type.
    pub ty: Ty,
    /// Whether this is a static (per-class) field.
    pub is_static: bool,
    /// Whether the field is volatile. Volatile accesses trigger the JMM
    /// coherence actions on the SPE software cache (§3.2.1).
    pub volatile: bool,
}

/// A method definition.
#[derive(Clone, PartialEq, Debug)]
pub struct MethodDef {
    /// Method name (with its arity it must be unique within the class).
    pub name: String,
    /// Declaring class.
    pub class: ClassId,
    /// Parameter types. For instance methods, slot 0 is the receiver and
    /// is *not* listed here.
    pub params: Vec<Ty>,
    /// Return type, or `None` for void.
    pub ret: Option<Ty>,
    /// Whether this is a static method (no receiver).
    pub is_static: bool,
    /// Number of local variable slots (including parameters/receiver).
    pub max_locals: u16,
    /// The method body.
    pub body: MethodBody,
    /// Behavioural annotations (placement hints).
    pub annotations: Vec<Annotation>,
    /// Vtable slot if this method is virtually dispatchable.
    pub vtable_slot: Option<u16>,
    /// For native methods: which bridge path they take.
    pub native_kind: Option<NativeKind>,
}

impl MethodDef {
    /// Number of local slots occupied by the receiver + parameters.
    pub fn arg_slots(&self) -> u16 {
        let recv = if self.is_static { 0 } else { 1 };
        recv + self.params.len() as u16
    }

    /// Whether the method carries the given annotation.
    pub fn has_annotation(&self, a: Annotation) -> bool {
        self.annotations.contains(&a)
    }

    /// The bytecode body, if any.
    pub fn code(&self) -> Option<&[Instr]> {
        match &self.body {
            MethodBody::Bytecode(code) => Some(code),
            MethodBody::Native(_) => None,
        }
    }
}

/// A class definition.
#[derive(Clone, PartialEq, Debug)]
pub struct ClassDef {
    /// Class name (unique within the program).
    pub name: String,
    /// Single-inheritance superclass.
    pub super_class: Option<ClassId>,
    /// Instance fields declared by this class (not inherited ones).
    pub instance_fields: Vec<FieldId>,
    /// Static fields declared by this class.
    pub static_fields: Vec<FieldId>,
    /// Methods declared by this class.
    pub methods: Vec<MethodId>,
    /// Virtual dispatch table: slot → implementing method, including
    /// inherited and overridden entries. This is the model for the TIB
    /// ("type information block") that the SPE code cache caches per
    /// class (§3.2.2).
    pub vtable: Vec<MethodId>,
}

impl ClassDef {
    /// Estimated byte size of this class's TIB when cached in SPE local
    /// memory: one 4-byte code pointer and one 4-byte length word per
    /// vtable entry, plus a 16-byte header (paper Figure 3 shows
    /// per-method pointer + length pairs).
    pub fn tib_bytes(&self) -> u32 {
        16 + 8 * self.vtable.len() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_method(is_static: bool, params: usize) -> MethodDef {
        MethodDef {
            name: "m".into(),
            class: ClassId(0),
            params: vec![Ty::Int; params],
            ret: None,
            is_static,
            max_locals: 4,
            body: MethodBody::Bytecode(vec![Instr::Return]),
            annotations: vec![Annotation::FloatIntensive],
            vtable_slot: None,
            native_kind: None,
        }
    }

    #[test]
    fn arg_slots_counts_receiver() {
        assert_eq!(sample_method(true, 2).arg_slots(), 2);
        assert_eq!(sample_method(false, 2).arg_slots(), 3);
        assert_eq!(sample_method(true, 0).arg_slots(), 0);
    }

    #[test]
    fn annotations_query() {
        let m = sample_method(true, 0);
        assert!(m.has_annotation(Annotation::FloatIntensive));
        assert!(!m.has_annotation(Annotation::RunOnPpe));
    }

    #[test]
    fn code_accessor() {
        let m = sample_method(true, 0);
        assert_eq!(m.code(), Some(&[Instr::Return][..]));
        let n = MethodDef {
            body: MethodBody::Native(NativeId(3)),
            ..sample_method(true, 0)
        };
        assert!(n.code().is_none());
    }

    #[test]
    fn tib_size_scales_with_vtable() {
        let c = ClassDef {
            name: "C".into(),
            super_class: None,
            instance_fields: vec![],
            static_fields: vec![],
            methods: vec![],
            vtable: vec![MethodId(0); 5],
        };
        assert_eq!(c.tib_bytes(), 16 + 40);
    }
}
