//! Human-readable disassembly of guest bytecode.

use crate::bytecode::Instr;
use crate::program::{MethodId, Program};
use std::fmt::Write as _;

/// Render one instruction, resolving names through the program.
pub fn instr_to_string(program: &Program, instr: &Instr) -> String {
    use Instr::*;
    match instr {
        ConstI32(v) => format!("const.i32 {v}"),
        ConstI64(v) => format!("const.i64 {v}"),
        ConstF32(v) => format!("const.f32 {v}"),
        ConstF64(v) => format!("const.f64 {v}"),
        ConstNull => "const.null".into(),
        Pop => "pop".into(),
        Dup => "dup".into(),
        DupX1 => "dup_x1".into(),
        Swap => "swap".into(),
        Load(s) => format!("load {s}"),
        Store(s) => format!("store {s}"),
        IInc(s, d) => format!("iinc {s}, {d}"),
        IAdd => "iadd".into(),
        ISub => "isub".into(),
        IMul => "imul".into(),
        IDiv => "idiv".into(),
        IRem => "irem".into(),
        INeg => "ineg".into(),
        IShl => "ishl".into(),
        IShr => "ishr".into(),
        IUShr => "iushr".into(),
        IAnd => "iand".into(),
        IOr => "ior".into(),
        IXor => "ixor".into(),
        LAdd => "ladd".into(),
        LSub => "lsub".into(),
        LMul => "lmul".into(),
        LDiv => "ldiv".into(),
        LRem => "lrem".into(),
        LNeg => "lneg".into(),
        LShl => "lshl".into(),
        LShr => "lshr".into(),
        LUShr => "lushr".into(),
        LAnd => "land".into(),
        LOr => "lor".into(),
        LXor => "lxor".into(),
        FAdd => "fadd".into(),
        FSub => "fsub".into(),
        FMul => "fmul".into(),
        FDiv => "fdiv".into(),
        FNeg => "fneg".into(),
        FSqrt => "fsqrt".into(),
        DAdd => "dadd".into(),
        DSub => "dsub".into(),
        DMul => "dmul".into(),
        DDiv => "ddiv".into(),
        DNeg => "dneg".into(),
        DSqrt => "dsqrt".into(),
        I2L => "i2l".into(),
        I2F => "i2f".into(),
        I2D => "i2d".into(),
        L2I => "l2i".into(),
        L2F => "l2f".into(),
        L2D => "l2d".into(),
        F2I => "f2i".into(),
        F2D => "f2d".into(),
        D2I => "d2i".into(),
        D2L => "d2l".into(),
        D2F => "d2f".into(),
        I2B => "i2b".into(),
        I2S => "i2s".into(),
        LCmp => "lcmp".into(),
        FCmpL => "fcmpl".into(),
        FCmpG => "fcmpg".into(),
        DCmpL => "dcmpl".into(),
        DCmpG => "dcmpg".into(),
        Goto(t) => format!("goto @{t}"),
        IfI(c, t) => format!("if.{c} @{t}"),
        IfICmp(c, t) => format!("if_icmp.{c} @{t}"),
        IfNull(t) => format!("ifnull @{t}"),
        IfNonNull(t) => format!("ifnonnull @{t}"),
        IfACmpEq(t) => format!("if_acmpeq @{t}"),
        IfACmpNe(t) => format!("if_acmpne @{t}"),
        New(c) => format!("new {}", program.class(*c).name),
        GetField(f) => format!("getfield {}", field_name(program, *f)),
        PutField(f) => format!("putfield {}", field_name(program, *f)),
        GetStatic(f) => format!("getstatic {}", field_name(program, *f)),
        PutStatic(f) => format!("putstatic {}", field_name(program, *f)),
        InstanceOf(c) => format!("instanceof {}", program.class(*c).name),
        NewArray(e) => format!("newarray {e}"),
        ArrayLength => "arraylength".into(),
        ALoad(e) => format!("aload.{e}"),
        AStore(e) => format!("astore.{e}"),
        InvokeStatic(m) => format!("invokestatic {}", method_name(program, *m)),
        InvokeVirtual(m) => format!("invokevirtual {}", method_name(program, *m)),
        Return => "return".into(),
        ReturnValue => "returnvalue".into(),
        MonitorEnter => "monitorenter".into(),
        MonitorExit => "monitorexit".into(),
    }
}

fn field_name(program: &Program, f: crate::program::FieldId) -> String {
    let fd = program.field(f);
    format!("{}.{}", program.class(fd.class).name, fd.name)
}

fn method_name(program: &Program, m: MethodId) -> String {
    let md = program.method(m);
    format!(
        "{}.{}/{}",
        program.class(md.class).name,
        md.name,
        md.params.len()
    )
}

/// Disassemble a whole method to a multi-line listing.
pub fn disassemble_method(program: &Program, method: MethodId) -> String {
    let def = program.method(method);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "method {} (locals={}):",
        method_name(program, method),
        def.max_locals
    );
    match def.code() {
        None => {
            let _ = writeln!(out, "  <native>");
        }
        Some(code) => {
            for (i, instr) in code.iter().enumerate() {
                let _ = writeln!(out, "  {i:4}: {}", instr_to_string(program, instr));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class::MethodBody;
    use crate::program::ProgramBuilder;
    use crate::types::Ty;

    #[test]
    fn disassembles_named_references() {
        let mut b = ProgramBuilder::new();
        let c = b.add_class("Point", None);
        let f = b.add_field(c, "x", Ty::Int);
        let m = b.add_static_method(
            c,
            "zero",
            vec![],
            Some(Ty::Int),
            1,
            MethodBody::Bytecode(vec![Instr::New(c), Instr::GetField(f), Instr::ReturnValue]),
        );
        let p = b.finish().unwrap();
        let text = disassemble_method(&p, m);
        assert!(text.contains("new Point"));
        assert!(text.contains("getfield Point.x"));
        assert!(text.contains("returnvalue"));
        assert!(text.contains("Point.zero/0"));
    }

    #[test]
    fn native_disassembly() {
        let mut b = ProgramBuilder::new();
        let c = b.add_class("T", None);
        let m = b.add_native_method(
            c,
            "nat",
            vec![],
            None,
            crate::class::NativeId(1),
            crate::class::NativeKind::Jni,
        );
        let p = b.finish().unwrap();
        assert!(disassemble_method(&p, m).contains("<native>"));
    }

    #[test]
    fn every_simple_opcode_renders() {
        let p = ProgramBuilder::new().finish().unwrap();
        for i in [
            Instr::IAdd,
            Instr::DSqrt,
            Instr::LCmp,
            Instr::ConstNull,
            Instr::ALoad(crate::types::ElemTy::Short),
            Instr::Goto(3),
        ] {
            assert!(!instr_to_string(&p, &i).is_empty());
        }
    }
}
