//! # hera-isa — the guest instruction-set architecture
//!
//! This crate defines the portable, JVM-like bytecode that Hera-JVM
//! executes, together with the class/field/method metadata model, a
//! program container with symbolic resolution, a method builder with
//! label patching, a bytecode verifier, and a disassembler.
//!
//! The instruction set is deliberately shaped like JVM bytecode: it is a
//! typed stack machine whose heap accesses (`GetField`, `ALoad`, …) carry
//! enough static type information for the SPE software caches to
//! specialise transfers per data type, exactly the property §3.2.1 of the
//! paper exploits ("This approach is enhanced by the high-level
//! information still present in Java bytecodes").
//!
//! ## Divergences from real JVM bytecode (documented per DESIGN.md)
//!
//! * No catchable exceptions or exception tables: runtime faults (null
//!   dereference, bounds, division by zero) are VM traps that terminate
//!   the faulting thread with a [`bytecode::Trap`] error.
//! * `FSqrt`/`DSqrt` exist as intrinsic instructions (real JITs
//!   intrinsify `Math.sqrt` the same way).
//! * Constant pool entries are resolved at build time; instructions carry
//!   direct indices ([`program::MethodId`], [`program::FieldId`], …).

pub mod builder;
pub mod bytecode;
pub mod class;
pub mod disasm;
pub mod program;
pub mod types;
pub mod verifier;

pub use builder::MethodBuilder;
pub use bytecode::{Cond, Instr, Trap};
pub use class::{Annotation, ClassDef, FieldDef, MethodBody, MethodDef, NativeId};
pub use program::{ClassId, FieldId, MethodId, Program, ProgramBuilder, ResolveError};
pub use types::{ElemTy, Kind, ObjRef, Slot, Ty, Value};
pub use verifier::{verify_method, verify_program, MethodInfo, RefMap, VerifyError};
