//! The program container: flat class/method/field tables with symbolic
//! resolution, vtable construction and subtype queries.

use crate::class::{Annotation, ClassDef, FieldDef, MethodBody, MethodDef, NativeId, NativeKind};
use crate::types::Ty;
use std::collections::HashMap;
use std::fmt;

/// Index of a class in [`Program::classes`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct ClassId(pub u16);

/// Index of a method in [`Program::methods`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct MethodId(pub u32);

/// Index of a field in [`Program::fields`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct FieldId(pub u32);

/// Errors raised while building or resolving a program.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ResolveError {
    /// A class name was declared twice.
    DuplicateClass(String),
    /// A field name was declared twice in the same class.
    DuplicateField(String),
    /// A method (name, arity) pair was declared twice in the same class.
    DuplicateMethod(String),
    /// Lookup of an undeclared class.
    UnknownClass(String),
    /// Lookup of an undeclared field.
    UnknownField(String),
    /// Lookup of an undeclared method.
    UnknownMethod(String),
    /// An override's signature does not match the overridden method.
    SignatureMismatch(String),
    /// The designated entry point is missing or not a static method.
    BadEntryPoint(String),
}

impl fmt::Display for ResolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResolveError::DuplicateClass(n) => write!(f, "duplicate class `{n}`"),
            ResolveError::DuplicateField(n) => write!(f, "duplicate field `{n}`"),
            ResolveError::DuplicateMethod(n) => write!(f, "duplicate method `{n}`"),
            ResolveError::UnknownClass(n) => write!(f, "unknown class `{n}`"),
            ResolveError::UnknownField(n) => write!(f, "unknown field `{n}`"),
            ResolveError::UnknownMethod(n) => write!(f, "unknown method `{n}`"),
            ResolveError::SignatureMismatch(n) => {
                write!(f, "override signature mismatch for `{n}`")
            }
            ResolveError::BadEntryPoint(n) => write!(f, "bad entry point `{n}`"),
        }
    }
}

impl std::error::Error for ResolveError {}

/// A fully resolved guest program.
///
/// All symbolic references have been replaced by direct indices, vtables
/// are built, and the program is ready for verification and compilation.
#[derive(Clone, Debug, Default)]
pub struct Program {
    /// All classes; `ClassId` indexes this vector.
    pub classes: Vec<ClassDef>,
    /// All methods; `MethodId` indexes this vector.
    pub methods: Vec<MethodDef>,
    /// All fields; `FieldId` indexes this vector.
    pub fields: Vec<FieldDef>,
    /// The entry point (a static method with no parameters), if set.
    pub entry: Option<MethodId>,
    name_to_class: HashMap<String, ClassId>,
}

impl Program {
    /// The class definition for an id.
    #[inline]
    pub fn class(&self, id: ClassId) -> &ClassDef {
        &self.classes[id.0 as usize]
    }

    /// The method definition for an id.
    #[inline]
    pub fn method(&self, id: MethodId) -> &MethodDef {
        &self.methods[id.0 as usize]
    }

    /// The field definition for an id.
    #[inline]
    pub fn field(&self, id: FieldId) -> &FieldDef {
        &self.fields[id.0 as usize]
    }

    /// Look a class up by name.
    pub fn class_by_name(&self, name: &str) -> Option<ClassId> {
        self.name_to_class.get(name).copied()
    }

    /// Look up a method by class name, method name and arity (parameter
    /// count excluding the receiver).
    pub fn method_by_name(&self, class: &str, method: &str, arity: usize) -> Option<MethodId> {
        let cid = self.class_by_name(class)?;
        self.class(cid)
            .methods
            .iter()
            .copied()
            .find(|&m| self.method(m).name == method && self.method(m).params.len() == arity)
    }

    /// Look up an instance or static field by class and field name,
    /// searching superclasses for instance fields.
    pub fn field_by_name(&self, class: &str, field: &str) -> Option<FieldId> {
        let mut cur = self.class_by_name(class);
        while let Some(cid) = cur {
            let c = self.class(cid);
            for &fid in c.instance_fields.iter().chain(&c.static_fields) {
                if self.field(fid).name == field {
                    return Some(fid);
                }
            }
            cur = c.super_class;
        }
        None
    }

    /// Whether `sub` is `sup` or a (transitive) subclass of it.
    pub fn is_subclass(&self, sub: ClassId, sup: ClassId) -> bool {
        let mut cur = Some(sub);
        while let Some(c) = cur {
            if c == sup {
                return true;
            }
            cur = self.class(c).super_class;
        }
        false
    }

    /// All instance fields of a class, including inherited ones, in
    /// layout order (superclass fields first, as the JVM lays them out).
    pub fn all_instance_fields(&self, class: ClassId) -> Vec<FieldId> {
        let mut chain = Vec::new();
        let mut cur = Some(class);
        while let Some(c) = cur {
            chain.push(c);
            cur = self.class(c).super_class;
        }
        let mut out = Vec::new();
        for &c in chain.iter().rev() {
            out.extend_from_slice(&self.class(c).instance_fields);
        }
        out
    }

    /// Total number of methods with bytecode bodies.
    pub fn bytecode_method_count(&self) -> usize {
        self.methods.iter().filter(|m| m.code().is_some()).count()
    }
}

/// Pending method registration inside the builder.
struct PendingMethod {
    def: MethodDef,
}

/// Builds a [`Program`] from class/field/method declarations, resolving
/// names, assigning ids, and computing vtables (override-by-name+arity,
/// single inheritance).
///
/// # Examples
///
/// ```
/// use hera_isa::{ProgramBuilder, Instr, Ty, MethodBody};
///
/// let mut b = ProgramBuilder::new();
/// let c = b.add_class("Main", None);
/// b.add_static_method(
///     c, "main", vec![], Some(Ty::Int), 1,
///     MethodBody::Bytecode(vec![Instr::ConstI32(42), Instr::ReturnValue]),
/// );
/// let program = b.finish_with_entry("Main", "main").unwrap();
/// assert!(program.entry.is_some());
/// ```
pub struct ProgramBuilder {
    classes: Vec<ClassDef>,
    fields: Vec<FieldDef>,
    pending: Vec<PendingMethod>,
    name_to_class: HashMap<String, ClassId>,
}

impl ProgramBuilder {
    /// Create an empty builder.
    pub fn new() -> Self {
        ProgramBuilder {
            classes: Vec::new(),
            fields: Vec::new(),
            pending: Vec::new(),
            name_to_class: HashMap::new(),
        }
    }

    /// Declare a class. The superclass, if any, must already be declared.
    pub fn add_class(&mut self, name: &str, super_class: Option<ClassId>) -> ClassId {
        assert!(
            !self.name_to_class.contains_key(name),
            "duplicate class `{name}`"
        );
        let id = ClassId(self.classes.len() as u16);
        self.classes.push(ClassDef {
            name: name.to_string(),
            super_class,
            instance_fields: Vec::new(),
            static_fields: Vec::new(),
            methods: Vec::new(),
            vtable: Vec::new(),
        });
        self.name_to_class.insert(name.to_string(), id);
        id
    }

    /// Declare an instance field on a class.
    pub fn add_field(&mut self, class: ClassId, name: &str, ty: Ty) -> FieldId {
        self.add_field_inner(class, name, ty, false, false)
    }

    /// Declare a volatile instance field on a class.
    pub fn add_volatile_field(&mut self, class: ClassId, name: &str, ty: Ty) -> FieldId {
        self.add_field_inner(class, name, ty, false, true)
    }

    /// Declare a static field on a class.
    pub fn add_static_field(&mut self, class: ClassId, name: &str, ty: Ty) -> FieldId {
        self.add_field_inner(class, name, ty, true, false)
    }

    /// Declare a volatile static field on a class.
    pub fn add_volatile_static_field(&mut self, class: ClassId, name: &str, ty: Ty) -> FieldId {
        self.add_field_inner(class, name, ty, true, true)
    }

    fn add_field_inner(
        &mut self,
        class: ClassId,
        name: &str,
        ty: Ty,
        is_static: bool,
        volatile: bool,
    ) -> FieldId {
        let id = FieldId(self.fields.len() as u32);
        self.fields.push(FieldDef {
            name: name.to_string(),
            class,
            ty,
            is_static,
            volatile,
        });
        let c = &mut self.classes[class.0 as usize];
        if is_static {
            c.static_fields.push(id);
        } else {
            c.instance_fields.push(id);
        }
        id
    }

    /// Declare a static method.
    pub fn add_static_method(
        &mut self,
        class: ClassId,
        name: &str,
        params: Vec<Ty>,
        ret: Option<Ty>,
        max_locals: u16,
        body: MethodBody,
    ) -> MethodId {
        self.add_method_inner(class, name, params, ret, true, max_locals, body, vec![])
    }

    /// Declare a virtual (instance) method.
    pub fn add_virtual_method(
        &mut self,
        class: ClassId,
        name: &str,
        params: Vec<Ty>,
        ret: Option<Ty>,
        max_locals: u16,
        body: MethodBody,
    ) -> MethodId {
        self.add_method_inner(class, name, params, ret, false, max_locals, body, vec![])
    }

    /// Declare a static method with behavioural annotations.
    #[allow(clippy::too_many_arguments)]
    pub fn add_annotated_static_method(
        &mut self,
        class: ClassId,
        name: &str,
        params: Vec<Ty>,
        ret: Option<Ty>,
        max_locals: u16,
        body: MethodBody,
        annotations: Vec<Annotation>,
    ) -> MethodId {
        self.add_method_inner(
            class,
            name,
            params,
            ret,
            true,
            max_locals,
            body,
            annotations,
        )
    }

    /// Declare a native method (host-implemented; see `hera-core`'s
    /// native bridge).
    #[allow(clippy::too_many_arguments)]
    pub fn add_native_method(
        &mut self,
        class: ClassId,
        name: &str,
        params: Vec<Ty>,
        ret: Option<Ty>,
        native: NativeId,
        kind: NativeKind,
    ) -> MethodId {
        let id = self.add_method_inner(
            class,
            name,
            params,
            ret,
            true,
            0,
            MethodBody::Native(native),
            vec![],
        );
        self.pending[id.0 as usize].def.native_kind = Some(kind);
        id
    }

    /// Attach annotations to an already-declared method.
    pub fn annotate(&mut self, method: MethodId, annotation: Annotation) {
        self.pending[method.0 as usize]
            .def
            .annotations
            .push(annotation);
    }

    /// Replace a declared method's body (two-phase authoring: declare
    /// all signatures first so calls can reference ids, then supply
    /// bodies — this is how `hera-frontend` handles mutual recursion).
    pub fn set_method_body(&mut self, method: MethodId, body: MethodBody, max_locals: u16) {
        let def = &mut self.pending[method.0 as usize].def;
        def.body = body;
        def.max_locals = max_locals;
    }

    /// Signature of a declared (possibly not yet finished) method:
    /// `(params, ret, is_static, class)`.
    pub fn method_sig(&self, method: MethodId) -> (&[Ty], Option<Ty>, bool, ClassId) {
        let def = &self.pending[method.0 as usize].def;
        (&def.params, def.ret, def.is_static, def.class)
    }

    /// Facts about a declared field: `(type, is_static, volatile)`.
    pub fn field_facts(&self, field: FieldId) -> (Ty, bool, bool) {
        let f = &self.fields[field.0 as usize];
        (f.ty, f.is_static, f.volatile)
    }

    /// Whether a declared method is virtually dispatchable (instance).
    pub fn is_virtual(&self, method: MethodId) -> bool {
        !self.pending[method.0 as usize].def.is_static
    }

    #[allow(clippy::too_many_arguments)]
    fn add_method_inner(
        &mut self,
        class: ClassId,
        name: &str,
        params: Vec<Ty>,
        ret: Option<Ty>,
        is_static: bool,
        max_locals: u16,
        body: MethodBody,
        annotations: Vec<Annotation>,
    ) -> MethodId {
        let id = MethodId(self.pending.len() as u32);
        self.pending.push(PendingMethod {
            def: MethodDef {
                name: name.to_string(),
                class,
                params,
                ret,
                is_static,
                max_locals,
                body,
                annotations,
                vtable_slot: None,
                native_kind: None,
            },
        });
        self.classes[class.0 as usize].methods.push(id);
        id
    }

    /// Finalise the program: validate uniqueness, build vtables.
    pub fn finish(self) -> Result<Program, ResolveError> {
        let ProgramBuilder {
            classes,
            fields,
            pending,
            name_to_class,
        } = self;
        let mut methods: Vec<MethodDef> = pending.into_iter().map(|p| p.def).collect();
        let mut classes = classes;

        // Uniqueness checks.
        for class in &classes {
            let mut seen_fields = HashMap::new();
            for &fid in class.instance_fields.iter().chain(&class.static_fields) {
                let f = &fields[fid.0 as usize];
                if seen_fields.insert((&f.name, f.is_static), ()).is_some() {
                    return Err(ResolveError::DuplicateField(format!(
                        "{}.{}",
                        class.name, f.name
                    )));
                }
            }
            let mut seen_methods = HashMap::new();
            for &mid in &class.methods {
                let m = &methods[mid.0 as usize];
                if seen_methods.insert((&m.name, m.params.len()), ()).is_some() {
                    return Err(ResolveError::DuplicateMethod(format!(
                        "{}.{}/{}",
                        class.name,
                        m.name,
                        m.params.len()
                    )));
                }
            }
        }

        // Build vtables in declaration order (superclasses were declared
        // before subclasses, enforced by `add_class`'s signature).
        for cidx in 0..classes.len() {
            let mut vtable: Vec<MethodId> = match classes[cidx].super_class {
                Some(sup) => classes[sup.0 as usize].vtable.clone(),
                None => Vec::new(),
            };
            let own: Vec<MethodId> = classes[cidx].methods.clone();
            for mid in own {
                let (name, arity, is_static) = {
                    let m = &methods[mid.0 as usize];
                    (m.name.clone(), m.params.len(), m.is_static)
                };
                if is_static {
                    continue;
                }
                // Overriding: same name + arity as an inherited slot.
                let slot = vtable.iter().position(|&existing| {
                    let e = &methods[existing.0 as usize];
                    e.name == name && e.params.len() == arity
                });
                match slot {
                    Some(s) => {
                        let existing = &methods[vtable[s].0 as usize];
                        let m = &methods[mid.0 as usize];
                        if existing.params != m.params || existing.ret != m.ret {
                            return Err(ResolveError::SignatureMismatch(format!(
                                "{}.{}",
                                classes[cidx].name, name
                            )));
                        }
                        vtable[s] = mid;
                        methods[mid.0 as usize].vtable_slot = Some(s as u16);
                    }
                    None => {
                        let s = vtable.len() as u16;
                        vtable.push(mid);
                        methods[mid.0 as usize].vtable_slot = Some(s);
                    }
                }
            }
            classes[cidx].vtable = vtable;
        }

        Ok(Program {
            classes,
            methods,
            fields,
            entry: None,
            name_to_class,
        })
    }

    /// Finalise and designate the entry point: a zero-argument static
    /// method on the named class.
    pub fn finish_with_entry(self, class: &str, method: &str) -> Result<Program, ResolveError> {
        let mut program = self.finish()?;
        let mid = program
            .method_by_name(class, method, 0)
            .ok_or_else(|| ResolveError::BadEntryPoint(format!("{class}.{method}")))?;
        if !program.method(mid).is_static {
            return Err(ResolveError::BadEntryPoint(format!("{class}.{method}")));
        }
        program.entry = Some(mid);
        Ok(program)
    }
}

impl Default for ProgramBuilder {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bytecode::Instr;

    fn ret_void() -> MethodBody {
        MethodBody::Bytecode(vec![Instr::Return])
    }

    #[test]
    fn builds_simple_program() {
        let mut b = ProgramBuilder::new();
        let c = b.add_class("Main", None);
        b.add_field(c, "x", Ty::Int);
        b.add_static_method(c, "main", vec![], None, 0, ret_void());
        let p = b.finish_with_entry("Main", "main").unwrap();
        assert_eq!(p.classes.len(), 1);
        assert_eq!(p.methods.len(), 1);
        assert_eq!(p.fields.len(), 1);
        assert!(p.entry.is_some());
        assert_eq!(p.class_by_name("Main"), Some(ClassId(0)));
        assert_eq!(p.class_by_name("Nope"), None);
    }

    #[test]
    fn vtable_inheritance_and_override() {
        let mut b = ProgramBuilder::new();
        let animal = b.add_class("Animal", None);
        let speak_a = b.add_virtual_method(animal, "speak", vec![], Some(Ty::Int), 1, ret_void());
        let eat = b.add_virtual_method(animal, "eat", vec![], None, 1, ret_void());
        let dog = b.add_class("Dog", Some(animal));
        let speak_d = b.add_virtual_method(dog, "speak", vec![], Some(Ty::Int), 1, ret_void());
        let fetch = b.add_virtual_method(dog, "fetch", vec![], None, 1, ret_void());
        let p = b.finish().unwrap();

        let animal_vt = &p.class(animal).vtable;
        assert_eq!(animal_vt.as_slice(), &[speak_a, eat]);
        let dog_vt = &p.class(dog).vtable;
        assert_eq!(dog_vt.as_slice(), &[speak_d, eat, fetch]);
        assert_eq!(p.method(speak_a).vtable_slot, Some(0));
        assert_eq!(p.method(speak_d).vtable_slot, Some(0));
        assert_eq!(p.method(fetch).vtable_slot, Some(2));
    }

    #[test]
    fn override_signature_mismatch_is_rejected() {
        let mut b = ProgramBuilder::new();
        let a = b.add_class("A", None);
        b.add_virtual_method(a, "f", vec![], Some(Ty::Int), 1, ret_void());
        let c = b.add_class("B", Some(a));
        b.add_virtual_method(c, "f", vec![], Some(Ty::Float), 1, ret_void());
        assert!(matches!(
            b.finish(),
            Err(ResolveError::SignatureMismatch(_))
        ));
    }

    #[test]
    fn duplicate_method_rejected() {
        let mut b = ProgramBuilder::new();
        let c = b.add_class("C", None);
        b.add_static_method(c, "f", vec![Ty::Int], None, 1, ret_void());
        b.add_static_method(c, "f", vec![Ty::Float], None, 1, ret_void());
        assert!(matches!(b.finish(), Err(ResolveError::DuplicateMethod(_))));
    }

    #[test]
    fn duplicate_field_rejected() {
        let mut b = ProgramBuilder::new();
        let c = b.add_class("C", None);
        b.add_field(c, "x", Ty::Int);
        b.add_field(c, "x", Ty::Float);
        assert!(matches!(b.finish(), Err(ResolveError::DuplicateField(_))));
    }

    #[test]
    fn subclass_queries() {
        let mut b = ProgramBuilder::new();
        let a = b.add_class("A", None);
        let c = b.add_class("B", Some(a));
        let d = b.add_class("C", Some(c));
        let e = b.add_class("Other", None);
        let p = b.finish().unwrap();
        assert!(p.is_subclass(d, a));
        assert!(p.is_subclass(d, d));
        assert!(p.is_subclass(c, a));
        assert!(!p.is_subclass(a, c));
        assert!(!p.is_subclass(e, a));
    }

    #[test]
    fn inherited_instance_fields_in_layout_order() {
        let mut b = ProgramBuilder::new();
        let a = b.add_class("A", None);
        let fa = b.add_field(a, "a", Ty::Long);
        let c = b.add_class("B", Some(a));
        let fb = b.add_field(c, "b", Ty::Int);
        let p = b.finish().unwrap();
        assert_eq!(p.all_instance_fields(c), vec![fa, fb]);
        assert_eq!(p.all_instance_fields(a), vec![fa]);
    }

    #[test]
    fn field_lookup_searches_superclasses() {
        let mut b = ProgramBuilder::new();
        let a = b.add_class("A", None);
        let fa = b.add_field(a, "inherited", Ty::Int);
        let c = b.add_class("B", Some(a));
        b.add_field(c, "own", Ty::Int);
        let p = b.finish().unwrap();
        assert_eq!(p.field_by_name("B", "inherited"), Some(fa));
        assert!(p.field_by_name("B", "own").is_some());
        assert_eq!(p.field_by_name("A", "own"), None);
    }

    #[test]
    fn entry_point_must_be_static_zero_arg() {
        let mut b = ProgramBuilder::new();
        let c = b.add_class("Main", None);
        b.add_virtual_method(c, "main", vec![], None, 1, ret_void());
        assert!(matches!(
            b.finish_with_entry("Main", "main"),
            Err(ResolveError::BadEntryPoint(_))
        ));
    }

    #[test]
    fn method_lookup_by_arity() {
        let mut b = ProgramBuilder::new();
        let c = b.add_class("C", None);
        let one = b.add_static_method(c, "f", vec![Ty::Int], None, 1, ret_void());
        let two = b.add_static_method(c, "f", vec![Ty::Int, Ty::Int], None, 2, ret_void());
        let p = b.finish().unwrap();
        assert_eq!(p.method_by_name("C", "f", 1), Some(one));
        assert_eq!(p.method_by_name("C", "f", 2), Some(two));
        assert_eq!(p.method_by_name("C", "f", 3), None);
    }
}
