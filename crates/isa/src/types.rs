//! Guest value and type vocabulary shared by every crate in the
//! workspace: runtime [`Value`]s, static [`Ty`]pes, array element types
//! and verification [`Kind`]s.

use crate::program::ClassId;
use std::fmt;

/// A reference into the guest heap.
///
/// `ObjRef(0)` is the null reference. Non-null values are byte offsets
/// into the main-memory heap (see `hera-mem`), which makes DMA transfers
/// of object byte ranges straightforward to model.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct ObjRef(pub u32);

impl ObjRef {
    /// The null reference.
    pub const NULL: ObjRef = ObjRef(0);

    /// Whether this reference is null.
    #[inline]
    pub fn is_null(self) -> bool {
        self.0 == 0
    }

    /// The heap address this reference designates.
    #[inline]
    pub fn addr(self) -> u32 {
        self.0
    }
}

impl fmt::Display for ObjRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_null() {
            write!(f, "null")
        } else {
            write!(f, "@{:#x}", self.0)
        }
    }
}

/// A tagged guest value, as held in operand stacks and local variables.
///
/// Thread stacks live in host memory (as in JikesRVM's threads, whose
/// stacks the runtime itself manages), so values stay tagged and GC root
/// scanning is exact without separate reference maps.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Value {
    /// 32-bit integer (also carries guest byte/short/boolean values).
    I32(i32),
    /// 64-bit integer.
    I64(i64),
    /// 32-bit IEEE float.
    F32(f32),
    /// 64-bit IEEE float.
    F64(f64),
    /// Heap reference (possibly null).
    Ref(ObjRef),
}

impl Value {
    /// The verification kind of this value.
    pub fn kind(self) -> Kind {
        match self {
            Value::I32(_) => Kind::I,
            Value::I64(_) => Kind::L,
            Value::F32(_) => Kind::F,
            Value::F64(_) => Kind::D,
            Value::Ref(_) => Kind::R,
        }
    }

    /// Extract an `i32`, panicking on kind mismatch.
    ///
    /// Verified bytecode guarantees the kinds match; the panic encodes a
    /// verifier bug, not a guest-program bug.
    #[inline]
    pub fn as_i32(self) -> i32 {
        match self {
            Value::I32(v) => v,
            other => panic!("value kind mismatch: expected i32, got {other:?}"),
        }
    }

    /// Extract an `i64`, panicking on kind mismatch.
    #[inline]
    pub fn as_i64(self) -> i64 {
        match self {
            Value::I64(v) => v,
            other => panic!("value kind mismatch: expected i64, got {other:?}"),
        }
    }

    /// Extract an `f32`, panicking on kind mismatch.
    #[inline]
    pub fn as_f32(self) -> f32 {
        match self {
            Value::F32(v) => v,
            other => panic!("value kind mismatch: expected f32, got {other:?}"),
        }
    }

    /// Extract an `f64`, panicking on kind mismatch.
    #[inline]
    pub fn as_f64(self) -> f64 {
        match self {
            Value::F64(v) => v,
            other => panic!("value kind mismatch: expected f64, got {other:?}"),
        }
    }

    /// Extract a reference, panicking on kind mismatch.
    #[inline]
    pub fn as_ref(self) -> ObjRef {
        match self {
            Value::Ref(v) => v,
            other => panic!("value kind mismatch: expected ref, got {other:?}"),
        }
    }

    /// The default (zero) value for a static type.
    pub fn default_for(ty: Ty) -> Value {
        match ty {
            Ty::Byte | Ty::Short | Ty::Int => Value::I32(0),
            Ty::Long => Value::I64(0),
            Ty::Float => Value::F32(0.0),
            Ty::Double => Value::F64(0.0),
            Ty::Ref(_) | Ty::Array(_) => Value::Ref(ObjRef::NULL),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::I32(v) => write!(f, "{v}i32"),
            Value::I64(v) => write!(f, "{v}i64"),
            Value::F32(v) => write!(f, "{v}f32"),
            Value::F64(v) => write!(f, "{v}f64"),
            Value::Ref(r) => write!(f, "{r}"),
        }
    }
}

/// An untagged 64-bit execution cell: the representation locals and
/// operand-stack entries take inside interpreter frames.
///
/// A `Slot` carries no runtime tag. The verifier proves a static kind
/// for every local and stack position at every instruction, and the
/// per-core compilers emit fully width-resolved [`MachineOp`]s, so the
/// interpreter always knows which accessor is correct — exactly the
/// discipline a baseline JIT's spill slots rely on. [`Value`] survives
/// only at API boundaries (entry arguments, return values, migration
/// repackaging, the native bridge, trace events); everything on the hot
/// path moves `Slot`s.
///
/// Bit conventions: `i32` is kept sign-extended, floats are stored as
/// their IEEE bit patterns, references as the zero-extended heap
/// address. The all-zero slot is therefore the correct default for
/// *every* kind (`0`, `0i64`, `+0.0f32`, `+0.0f64`, null).
///
/// [`MachineOp`]: ../hera_jit/enum.MachineOp.html
#[derive(Clone, Copy, PartialEq, Eq, Default)]
pub struct Slot(u64);

impl Slot {
    /// The all-zero slot: default value for every kind.
    pub const ZERO: Slot = Slot(0);

    /// Wrap a raw 64-bit cell (for codec paths that already hold bits).
    #[inline(always)]
    pub fn from_raw(bits: u64) -> Slot {
        Slot(bits)
    }

    /// The raw 64-bit cell.
    #[inline(always)]
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Store an `i32` (sign-extended).
    #[inline(always)]
    pub fn from_i32(v: i32) -> Slot {
        Slot(v as i64 as u64)
    }

    /// Read back an `i32` (truncating).
    #[inline(always)]
    pub fn i32(self) -> i32 {
        self.0 as i32
    }

    /// Store an `i64`.
    #[inline(always)]
    pub fn from_i64(v: i64) -> Slot {
        Slot(v as u64)
    }

    /// Read back an `i64`.
    #[inline(always)]
    pub fn i64(self) -> i64 {
        self.0 as i64
    }

    /// Store an `f32` as its IEEE bit pattern.
    #[inline(always)]
    pub fn from_f32(v: f32) -> Slot {
        Slot(v.to_bits() as u64)
    }

    /// Read back an `f32` from its IEEE bit pattern.
    #[inline(always)]
    pub fn f32(self) -> f32 {
        f32::from_bits(self.0 as u32)
    }

    /// Store an `f64` as its IEEE bit pattern.
    #[inline(always)]
    pub fn from_f64(v: f64) -> Slot {
        Slot(v.to_bits())
    }

    /// Read back an `f64` from its IEEE bit pattern.
    #[inline(always)]
    pub fn f64(self) -> f64 {
        f64::from_bits(self.0)
    }

    /// Store a heap reference (zero-extended address).
    #[inline(always)]
    pub fn from_ref(r: ObjRef) -> Slot {
        Slot(r.0 as u64)
    }

    /// Read back a heap reference.
    #[inline(always)]
    pub fn obj(self) -> ObjRef {
        ObjRef(self.0 as u32)
    }

    /// Lower a tagged value at an API boundary.
    #[inline]
    pub fn from_value(v: Value) -> Slot {
        match v {
            Value::I32(v) => Slot::from_i32(v),
            Value::I64(v) => Slot::from_i64(v),
            Value::F32(v) => Slot::from_f32(v),
            Value::F64(v) => Slot::from_f64(v),
            Value::Ref(r) => Slot::from_ref(r),
        }
    }

    /// Re-tag at an API boundary; the kind comes from a signature or a
    /// verifier map, never from the bits themselves.
    #[inline]
    pub fn to_value(self, kind: Kind) -> Value {
        match kind {
            Kind::I => Value::I32(self.i32()),
            Kind::L => Value::I64(self.i64()),
            Kind::F => Value::F32(self.f32()),
            Kind::D => Value::F64(self.f64()),
            Kind::R => Value::Ref(self.obj()),
        }
    }
}

impl From<Value> for Slot {
    #[inline]
    fn from(v: Value) -> Slot {
        Slot::from_value(v)
    }
}

impl fmt::Debug for Slot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Slot({:#018x})", self.0)
    }
}

/// A static guest type, as used in field and method signatures.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Ty {
    /// 8-bit signed integer (stored in 1 byte, widened to `I32` on load).
    Byte,
    /// 16-bit signed integer (stored in 2 bytes, widened to `I32`).
    Short,
    /// 32-bit signed integer.
    Int,
    /// 64-bit signed integer.
    Long,
    /// 32-bit IEEE float.
    Float,
    /// 64-bit IEEE float.
    Double,
    /// Reference to an instance of the named class (or a subclass).
    Ref(ClassId),
    /// Reference to an array with the given element type.
    Array(ElemTy),
}

impl Ty {
    /// Byte width of this type in object field layout.
    pub fn field_size(self) -> u32 {
        match self {
            Ty::Byte => 1,
            Ty::Short => 2,
            Ty::Int | Ty::Float | Ty::Ref(_) | Ty::Array(_) => 4,
            Ty::Long | Ty::Double => 8,
        }
    }

    /// The verification kind of values of this type.
    pub fn kind(self) -> Kind {
        match self {
            Ty::Byte | Ty::Short | Ty::Int => Kind::I,
            Ty::Long => Kind::L,
            Ty::Float => Kind::F,
            Ty::Double => Kind::D,
            Ty::Ref(_) | Ty::Array(_) => Kind::R,
        }
    }

    /// Whether this type is a heap reference (object or array).
    pub fn is_ref(self) -> bool {
        matches!(self, Ty::Ref(_) | Ty::Array(_))
    }
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ty::Byte => write!(f, "byte"),
            Ty::Short => write!(f, "short"),
            Ty::Int => write!(f, "int"),
            Ty::Long => write!(f, "long"),
            Ty::Float => write!(f, "float"),
            Ty::Double => write!(f, "double"),
            Ty::Ref(c) => write!(f, "ref#{}", c.0),
            Ty::Array(e) => write!(f, "{e}[]"),
        }
    }
}

/// Array element types.
///
/// Nested arrays are arrays of [`ElemTy::Ref`]; the reference elements
/// point at the inner array objects, mirroring how the JVM represents
/// `int[][]`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ElemTy {
    /// 1-byte elements.
    Byte,
    /// 2-byte elements.
    Short,
    /// 4-byte integer elements.
    Int,
    /// 8-byte integer elements.
    Long,
    /// 4-byte float elements.
    Float,
    /// 8-byte float elements.
    Double,
    /// 4-byte reference elements.
    Ref,
}

impl ElemTy {
    /// Byte width of one element.
    pub fn size(self) -> u32 {
        match self {
            ElemTy::Byte => 1,
            ElemTy::Short => 2,
            ElemTy::Int | ElemTy::Float | ElemTy::Ref => 4,
            ElemTy::Long | ElemTy::Double => 8,
        }
    }

    /// The verification kind of loaded elements.
    pub fn kind(self) -> Kind {
        match self {
            ElemTy::Byte | ElemTy::Short | ElemTy::Int => Kind::I,
            ElemTy::Long => Kind::L,
            ElemTy::Float => Kind::F,
            ElemTy::Double => Kind::D,
            ElemTy::Ref => Kind::R,
        }
    }
}

impl fmt::Display for ElemTy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ElemTy::Byte => write!(f, "byte"),
            ElemTy::Short => write!(f, "short"),
            ElemTy::Int => write!(f, "int"),
            ElemTy::Long => write!(f, "long"),
            ElemTy::Float => write!(f, "float"),
            ElemTy::Double => write!(f, "double"),
            ElemTy::Ref => write!(f, "ref"),
        }
    }
}

/// Verification kinds: the abstract stack-value categories the verifier
/// tracks. Reference types are verified class-insensitively (all refs
/// merge to `R`), which is sound for memory safety because the runtime's
/// object model validates field offsets against the dynamic class.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Kind {
    /// 32-bit integer.
    I,
    /// 64-bit integer.
    L,
    /// 32-bit float.
    F,
    /// 64-bit float.
    D,
    /// Reference.
    R,
}

impl fmt::Display for Kind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = match self {
            Kind::I => 'I',
            Kind::L => 'L',
            Kind::F => 'F',
            Kind::D => 'D',
            Kind::R => 'R',
        };
        write!(f, "{c}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_ref_properties() {
        assert!(ObjRef::NULL.is_null());
        assert!(!ObjRef(16).is_null());
        assert_eq!(ObjRef(16).addr(), 16);
        assert_eq!(format!("{}", ObjRef::NULL), "null");
        assert_eq!(format!("{}", ObjRef(0x20)), "@0x20");
    }

    #[test]
    fn value_kinds() {
        assert_eq!(Value::I32(1).kind(), Kind::I);
        assert_eq!(Value::I64(1).kind(), Kind::L);
        assert_eq!(Value::F32(1.0).kind(), Kind::F);
        assert_eq!(Value::F64(1.0).kind(), Kind::D);
        assert_eq!(Value::Ref(ObjRef::NULL).kind(), Kind::R);
    }

    #[test]
    fn value_accessors_roundtrip() {
        assert_eq!(Value::I32(-7).as_i32(), -7);
        assert_eq!(Value::I64(1 << 40).as_i64(), 1 << 40);
        assert_eq!(Value::F32(2.5).as_f32(), 2.5);
        assert_eq!(Value::F64(-0.125).as_f64(), -0.125);
        assert_eq!(Value::Ref(ObjRef(8)).as_ref(), ObjRef(8));
    }

    #[test]
    #[should_panic(expected = "value kind mismatch")]
    fn value_accessor_mismatch_panics() {
        let _ = Value::I32(1).as_f64();
    }

    #[test]
    fn default_values_are_zero() {
        assert_eq!(Value::default_for(Ty::Int), Value::I32(0));
        assert_eq!(Value::default_for(Ty::Byte), Value::I32(0));
        assert_eq!(Value::default_for(Ty::Long), Value::I64(0));
        assert_eq!(Value::default_for(Ty::Float), Value::F32(0.0));
        assert_eq!(Value::default_for(Ty::Double), Value::F64(0.0));
        assert_eq!(
            Value::default_for(Ty::Array(ElemTy::Int)),
            Value::Ref(ObjRef::NULL)
        );
    }

    #[test]
    fn field_sizes() {
        assert_eq!(Ty::Byte.field_size(), 1);
        assert_eq!(Ty::Short.field_size(), 2);
        assert_eq!(Ty::Int.field_size(), 4);
        assert_eq!(Ty::Float.field_size(), 4);
        assert_eq!(Ty::Long.field_size(), 8);
        assert_eq!(Ty::Double.field_size(), 8);
        assert_eq!(Ty::Array(ElemTy::Double).field_size(), 4);
    }

    #[test]
    fn elem_sizes_and_kinds() {
        assert_eq!(ElemTy::Byte.size(), 1);
        assert_eq!(ElemTy::Short.size(), 2);
        assert_eq!(ElemTy::Long.size(), 8);
        assert_eq!(ElemTy::Ref.size(), 4);
        assert_eq!(ElemTy::Byte.kind(), Kind::I);
        assert_eq!(ElemTy::Double.kind(), Kind::D);
        assert_eq!(ElemTy::Ref.kind(), Kind::R);
    }

    #[test]
    fn slot_roundtrips_every_kind() {
        assert_eq!(Slot::from_i32(-7).i32(), -7);
        assert_eq!(Slot::from_i32(i32::MIN).i32(), i32::MIN);
        assert_eq!(Slot::from_i64(-(1i64 << 40)).i64(), -(1i64 << 40));
        assert_eq!(Slot::from_f32(2.5).f32(), 2.5);
        assert!(Slot::from_f32(f32::NAN).f32().is_nan());
        assert_eq!(Slot::from_f64(-0.125).f64(), -0.125);
        assert_eq!(Slot::from_ref(ObjRef(8)).obj(), ObjRef(8));
        assert_eq!(Slot::ZERO.obj(), ObjRef::NULL);
    }

    #[test]
    fn slot_value_boundary_conversions() {
        for (v, k) in [
            (Value::I32(-3), Kind::I),
            (Value::I64(1 << 40), Kind::L),
            (Value::F32(1.5), Kind::F),
            (Value::F64(-2.25), Kind::D),
            (Value::Ref(ObjRef(16)), Kind::R),
        ] {
            assert_eq!(Slot::from_value(v).to_value(k), v);
        }
    }

    #[test]
    fn zero_slot_is_default_for_every_type() {
        for ty in [
            Ty::Int,
            Ty::Long,
            Ty::Float,
            Ty::Double,
            Ty::Array(ElemTy::Int),
        ] {
            assert_eq!(
                Slot::ZERO.to_value(ty.kind()),
                Value::default_for(ty),
                "{ty}"
            );
        }
    }

    #[test]
    fn ty_is_ref() {
        assert!(Ty::Ref(ClassId(0)).is_ref());
        assert!(Ty::Array(ElemTy::Byte).is_ref());
        assert!(!Ty::Int.is_ref());
    }
}
