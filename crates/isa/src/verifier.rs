//! Bytecode verification: abstract interpretation over value kinds.
//!
//! The verifier guarantees the properties the interpreter and the
//! per-core compilers rely on without re-checking:
//!
//! * every pop finds a value of the expected [`Kind`];
//! * local variable loads only read initialised slots;
//! * branch targets are in range and stack shapes agree at merge points;
//! * control cannot fall off the end of the method;
//! * field/method references agree in staticness and kind with their
//!   declarations;
//! * `max_locals` bounds every local access.
//!
//! Reference types are verified class-insensitively (kind `R`); the
//! runtime object model checks dynamic class/field agreement, so this is
//! sound for memory safety (see `types` module docs).

use crate::bytecode::Instr;
use crate::class::MethodBody;
use crate::program::{MethodId, Program};
use crate::types::Kind;
use std::collections::VecDeque;
use std::fmt;

/// A verification failure, with the method and instruction index.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct VerifyError {
    /// The method that failed to verify.
    pub method: MethodId,
    /// Offending instruction index (or the method length for
    /// fall-off-the-end errors).
    pub at: u32,
    /// What went wrong.
    pub kind: VerifyErrorKind,
}

/// The specific verification failure.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum VerifyErrorKind {
    /// Pop from an empty operand stack.
    StackUnderflow,
    /// Popped value kind differs from the instruction's expectation.
    KindMismatch {
        /// What the instruction needed.
        expected: Kind,
        /// What was on the stack.
        found: Kind,
    },
    /// Branch target outside the method.
    BadBranchTarget(u32),
    /// Local slot index ≥ `max_locals`.
    LocalOutOfRange(u16),
    /// Load from a local slot that may be uninitialised (or has
    /// conflicting kinds on different paths).
    UninitialisedLocal(u16),
    /// Stack shapes disagree at a control-flow merge point.
    MergeConflict,
    /// Execution can fall off the end of the method.
    FallsOffEnd,
    /// `Return` used in a non-void method or vice versa.
    ReturnMismatch,
    /// Static/instance mismatch on a field or method reference.
    StaticnessMismatch,
    /// Instruction references an out-of-range class/field/method id.
    BadReference,
    /// Stack is non-empty where it must be empty (not currently enforced
    /// at branches; reserved for stricter modes).
    StackNotEmpty,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "method #{} @{}: {:?}", self.method.0, self.at, self.kind)
    }
}

impl std::error::Error for VerifyError {}

/// Per-method facts computed during verification.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MethodInfo {
    /// Maximum operand stack depth over all paths.
    pub max_stack: u16,
    /// Local-variable slot count (copied from the method definition, so
    /// frame sizing needs only this struct).
    pub max_locals: u16,
    /// One [`RefMap`] per instruction: the frame shape on *entry* to
    /// that pc. Untagged frames make GC root scanning depend on these.
    pub ref_maps: Vec<RefMap>,
}

/// Which frame slots provably hold heap references on entry to one
/// instruction, plus the operand-stack depth there.
///
/// This is the verifier fact that makes untagged [`Slot`] frames safe to
/// collect exactly: a suspended frame's `pc` always names the *next*
/// instruction, whose entry state describes precisely the live locals
/// and stack of that frame. Locals the dataflow could not prove to be
/// references on every path (`Conflict`/`Uninit`) are unscannable and
/// therefore never carry a live reference across a GC point — the
/// verifier rejects loads from them, so treating them as non-refs is
/// exact, not conservative.
///
/// [`Slot`]: crate::types::Slot
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct RefMap {
    /// Operand-stack depth on entry (0 for unreachable instructions).
    pub stack_depth: u16,
    /// Bitset over locals: bit `i` ⇒ local `i` holds a reference.
    local_words: Box<[u64]>,
    /// Bitset over stack positions, bottom of stack = bit 0.
    stack_words: Box<[u64]>,
}

fn to_words(bits: impl Iterator<Item = bool>) -> Box<[u64]> {
    let mut words: Vec<u64> = Vec::new();
    for (i, b) in bits.enumerate() {
        if b {
            let w = i / 64;
            if w >= words.len() {
                words.resize(w + 1, 0);
            }
            words[w] |= 1u64 << (i % 64);
        }
    }
    words.into_boxed_slice()
}

#[inline]
fn word_bit(words: &[u64], i: usize) -> bool {
    words
        .get(i / 64)
        .is_some_and(|w| w & (1u64 << (i % 64)) != 0)
}

impl RefMap {
    /// Whether local slot `i` holds a reference at this pc.
    #[inline]
    pub fn local_is_ref(&self, i: usize) -> bool {
        word_bit(&self.local_words, i)
    }

    /// Whether operand-stack position `i` (bottom = 0) holds a
    /// reference at this pc.
    #[inline]
    pub fn stack_is_ref(&self, i: usize) -> bool {
        word_bit(&self.stack_words, i)
    }

    fn from_state(st: &State) -> RefMap {
        RefMap {
            stack_depth: st.stack.len() as u16,
            local_words: to_words(
                st.locals
                    .iter()
                    .map(|l| matches!(l, AbsLocal::Known(Kind::R))),
            ),
            stack_words: to_words(st.stack.iter().map(|&k| k == Kind::R)),
        }
    }
}

/// Abstract local-slot state.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum AbsLocal {
    Uninit,
    Known(Kind),
    Conflict,
}

#[derive(Clone, PartialEq, Eq, Debug)]
struct State {
    locals: Vec<AbsLocal>,
    stack: Vec<Kind>,
}

impl State {
    fn merge(&mut self, other: &State) -> Result<bool, VerifyErrorKind> {
        if self.stack.len() != other.stack.len() {
            return Err(VerifyErrorKind::MergeConflict);
        }
        let mut changed = false;
        for (a, b) in self.stack.iter().zip(&other.stack) {
            if a != b {
                return Err(VerifyErrorKind::MergeConflict);
            }
        }
        for (a, &b) in self.locals.iter_mut().zip(&other.locals) {
            let merged = match (*a, b) {
                (x, y) if x == y => x,
                (AbsLocal::Uninit, _) | (_, AbsLocal::Uninit) => AbsLocal::Conflict,
                (AbsLocal::Conflict, _) | (_, AbsLocal::Conflict) => AbsLocal::Conflict,
                (AbsLocal::Known(_), AbsLocal::Known(_)) => AbsLocal::Conflict,
            };
            if merged != *a {
                *a = merged;
                changed = true;
            }
        }
        Ok(changed)
    }
}

struct Ctx<'p> {
    method: MethodId,
    code: &'p [Instr],
    max_locals: u16,
}

impl<'p> Ctx<'p> {
    fn err(&self, at: usize, kind: VerifyErrorKind) -> VerifyError {
        VerifyError {
            method: self.method,
            at: at as u32,
            kind,
        }
    }

    fn pop(&self, st: &mut State, at: usize, expected: Kind) -> Result<(), VerifyError> {
        match st.stack.pop() {
            None => Err(self.err(at, VerifyErrorKind::StackUnderflow)),
            Some(k) if k == expected => Ok(()),
            Some(found) => Err(self.err(at, VerifyErrorKind::KindMismatch { expected, found })),
        }
    }

    fn pop_any(&self, st: &mut State, at: usize) -> Result<Kind, VerifyError> {
        st.stack
            .pop()
            .ok_or_else(|| self.err(at, VerifyErrorKind::StackUnderflow))
    }

    fn check_local(&self, at: usize, slot: u16) -> Result<(), VerifyError> {
        if slot >= self.max_locals {
            Err(self.err(at, VerifyErrorKind::LocalOutOfRange(slot)))
        } else {
            Ok(())
        }
    }

    fn check_target(&self, at: usize, t: u32) -> Result<(), VerifyError> {
        if (t as usize) < self.code.len() {
            Ok(())
        } else {
            Err(self.err(at, VerifyErrorKind::BadBranchTarget(t)))
        }
    }
}

/// Verify a single method's bytecode. Native methods verify trivially.
pub fn verify_method(program: &Program, method: MethodId) -> Result<MethodInfo, VerifyError> {
    let def = program.method(method);
    let code = match &def.body {
        MethodBody::Native(_) => {
            return Ok(MethodInfo {
                max_stack: 0,
                max_locals: def.max_locals,
                ref_maps: Vec::new(),
            })
        }
        MethodBody::Bytecode(code) => code.as_slice(),
    };
    let ctx = Ctx {
        method,
        code,
        max_locals: def.max_locals,
    };

    if code.is_empty() {
        return Err(ctx.err(0, VerifyErrorKind::FallsOffEnd));
    }

    // Entry state: receiver + parameters occupy the first slots.
    let mut entry_locals = vec![AbsLocal::Uninit; def.max_locals as usize];
    let mut slot = 0usize;
    if !def.is_static {
        if slot >= entry_locals.len() {
            return Err(ctx.err(0, VerifyErrorKind::LocalOutOfRange(0)));
        }
        entry_locals[slot] = AbsLocal::Known(Kind::R);
        slot += 1;
    }
    for &p in &def.params {
        if slot >= entry_locals.len() {
            return Err(ctx.err(0, VerifyErrorKind::LocalOutOfRange(slot as u16)));
        }
        entry_locals[slot] = AbsLocal::Known(p.kind());
        slot += 1;
    }

    let mut states: Vec<Option<State>> = vec![None; code.len()];
    states[0] = Some(State {
        locals: entry_locals,
        stack: Vec::new(),
    });
    let mut work: VecDeque<usize> = VecDeque::from([0]);
    let mut max_stack = 0u16;
    let ret_kind = def.ret.map(|t| t.kind());

    while let Some(pc) = work.pop_front() {
        let mut st = states[pc].clone().expect("worklist entry has state");
        let instr = code[pc];
        let mut next: Vec<usize> = Vec::with_capacity(2);

        use Instr::*;
        match instr {
            ConstI32(_) => st.stack.push(Kind::I),
            ConstI64(_) => st.stack.push(Kind::L),
            ConstF32(_) => st.stack.push(Kind::F),
            ConstF64(_) => st.stack.push(Kind::D),
            ConstNull => st.stack.push(Kind::R),
            Pop => {
                ctx.pop_any(&mut st, pc)?;
            }
            Dup => {
                let k = ctx.pop_any(&mut st, pc)?;
                st.stack.push(k);
                st.stack.push(k);
            }
            DupX1 => {
                let a = ctx.pop_any(&mut st, pc)?;
                let b = ctx.pop_any(&mut st, pc)?;
                st.stack.push(a);
                st.stack.push(b);
                st.stack.push(a);
            }
            Swap => {
                let a = ctx.pop_any(&mut st, pc)?;
                let b = ctx.pop_any(&mut st, pc)?;
                st.stack.push(a);
                st.stack.push(b);
            }
            Load(s) => {
                ctx.check_local(pc, s)?;
                match st.locals[s as usize] {
                    AbsLocal::Known(k) => st.stack.push(k),
                    _ => return Err(ctx.err(pc, VerifyErrorKind::UninitialisedLocal(s))),
                }
            }
            Store(s) => {
                ctx.check_local(pc, s)?;
                let k = ctx.pop_any(&mut st, pc)?;
                st.locals[s as usize] = AbsLocal::Known(k);
            }
            IInc(s, _) => {
                ctx.check_local(pc, s)?;
                match st.locals[s as usize] {
                    AbsLocal::Known(Kind::I) => {}
                    AbsLocal::Known(found) => {
                        return Err(ctx.err(
                            pc,
                            VerifyErrorKind::KindMismatch {
                                expected: Kind::I,
                                found,
                            },
                        ))
                    }
                    _ => return Err(ctx.err(pc, VerifyErrorKind::UninitialisedLocal(s))),
                }
            }
            IAdd | ISub | IMul | IDiv | IRem | IShl | IShr | IUShr | IAnd | IOr | IXor => {
                ctx.pop(&mut st, pc, Kind::I)?;
                ctx.pop(&mut st, pc, Kind::I)?;
                st.stack.push(Kind::I);
            }
            INeg | I2B | I2S => {
                ctx.pop(&mut st, pc, Kind::I)?;
                st.stack.push(Kind::I);
            }
            LAdd | LSub | LMul | LDiv | LRem | LAnd | LOr | LXor => {
                ctx.pop(&mut st, pc, Kind::L)?;
                ctx.pop(&mut st, pc, Kind::L)?;
                st.stack.push(Kind::L);
            }
            LShl | LShr | LUShr => {
                ctx.pop(&mut st, pc, Kind::I)?;
                ctx.pop(&mut st, pc, Kind::L)?;
                st.stack.push(Kind::L);
            }
            LNeg => {
                ctx.pop(&mut st, pc, Kind::L)?;
                st.stack.push(Kind::L);
            }
            FAdd | FSub | FMul | FDiv => {
                ctx.pop(&mut st, pc, Kind::F)?;
                ctx.pop(&mut st, pc, Kind::F)?;
                st.stack.push(Kind::F);
            }
            FNeg | FSqrt => {
                ctx.pop(&mut st, pc, Kind::F)?;
                st.stack.push(Kind::F);
            }
            DAdd | DSub | DMul | DDiv => {
                ctx.pop(&mut st, pc, Kind::D)?;
                ctx.pop(&mut st, pc, Kind::D)?;
                st.stack.push(Kind::D);
            }
            DNeg | DSqrt => {
                ctx.pop(&mut st, pc, Kind::D)?;
                st.stack.push(Kind::D);
            }
            I2L => conv(&ctx, &mut st, pc, Kind::I, Kind::L)?,
            I2F => conv(&ctx, &mut st, pc, Kind::I, Kind::F)?,
            I2D => conv(&ctx, &mut st, pc, Kind::I, Kind::D)?,
            L2I => conv(&ctx, &mut st, pc, Kind::L, Kind::I)?,
            L2F => conv(&ctx, &mut st, pc, Kind::L, Kind::F)?,
            L2D => conv(&ctx, &mut st, pc, Kind::L, Kind::D)?,
            F2I => conv(&ctx, &mut st, pc, Kind::F, Kind::I)?,
            F2D => conv(&ctx, &mut st, pc, Kind::F, Kind::D)?,
            D2I => conv(&ctx, &mut st, pc, Kind::D, Kind::I)?,
            D2L => conv(&ctx, &mut st, pc, Kind::D, Kind::L)?,
            D2F => conv(&ctx, &mut st, pc, Kind::D, Kind::F)?,
            LCmp => {
                ctx.pop(&mut st, pc, Kind::L)?;
                ctx.pop(&mut st, pc, Kind::L)?;
                st.stack.push(Kind::I);
            }
            FCmpL | FCmpG => {
                ctx.pop(&mut st, pc, Kind::F)?;
                ctx.pop(&mut st, pc, Kind::F)?;
                st.stack.push(Kind::I);
            }
            DCmpL | DCmpG => {
                ctx.pop(&mut st, pc, Kind::D)?;
                ctx.pop(&mut st, pc, Kind::D)?;
                st.stack.push(Kind::I);
            }
            Goto(t) => {
                ctx.check_target(pc, t)?;
            }
            IfI(_, t) => {
                ctx.check_target(pc, t)?;
                ctx.pop(&mut st, pc, Kind::I)?;
            }
            IfICmp(_, t) => {
                ctx.check_target(pc, t)?;
                ctx.pop(&mut st, pc, Kind::I)?;
                ctx.pop(&mut st, pc, Kind::I)?;
            }
            IfNull(t) | IfNonNull(t) => {
                ctx.check_target(pc, t)?;
                ctx.pop(&mut st, pc, Kind::R)?;
            }
            IfACmpEq(t) | IfACmpNe(t) => {
                ctx.check_target(pc, t)?;
                ctx.pop(&mut st, pc, Kind::R)?;
                ctx.pop(&mut st, pc, Kind::R)?;
            }
            New(c) => {
                if c.0 as usize >= program.classes.len() {
                    return Err(ctx.err(pc, VerifyErrorKind::BadReference));
                }
                st.stack.push(Kind::R);
            }
            InstanceOf(c) => {
                if c.0 as usize >= program.classes.len() {
                    return Err(ctx.err(pc, VerifyErrorKind::BadReference));
                }
                ctx.pop(&mut st, pc, Kind::R)?;
                st.stack.push(Kind::I);
            }
            GetField(f) | PutField(f) | GetStatic(f) | PutStatic(f) => {
                if f.0 as usize >= program.fields.len() {
                    return Err(ctx.err(pc, VerifyErrorKind::BadReference));
                }
                let fd = program.field(f);
                let is_static_op = matches!(instr, GetStatic(_) | PutStatic(_));
                if fd.is_static != is_static_op {
                    return Err(ctx.err(pc, VerifyErrorKind::StaticnessMismatch));
                }
                let k = fd.ty.kind();
                match instr {
                    GetField(_) => {
                        ctx.pop(&mut st, pc, Kind::R)?;
                        st.stack.push(k);
                    }
                    PutField(_) => {
                        ctx.pop(&mut st, pc, k)?;
                        ctx.pop(&mut st, pc, Kind::R)?;
                    }
                    GetStatic(_) => st.stack.push(k),
                    PutStatic(_) => ctx.pop(&mut st, pc, k)?,
                    _ => unreachable!(),
                }
            }
            NewArray(_) => {
                ctx.pop(&mut st, pc, Kind::I)?;
                st.stack.push(Kind::R);
            }
            ArrayLength => {
                ctx.pop(&mut st, pc, Kind::R)?;
                st.stack.push(Kind::I);
            }
            ALoad(e) => {
                ctx.pop(&mut st, pc, Kind::I)?;
                ctx.pop(&mut st, pc, Kind::R)?;
                st.stack.push(e.kind());
            }
            AStore(e) => {
                ctx.pop(&mut st, pc, e.kind())?;
                ctx.pop(&mut st, pc, Kind::I)?;
                ctx.pop(&mut st, pc, Kind::R)?;
            }
            InvokeStatic(m) | InvokeVirtual(m) => {
                if m.0 as usize >= program.methods.len() {
                    return Err(ctx.err(pc, VerifyErrorKind::BadReference));
                }
                let callee = program.method(m);
                let is_virtual = matches!(instr, InvokeVirtual(_));
                if is_virtual == callee.is_static {
                    return Err(ctx.err(pc, VerifyErrorKind::StaticnessMismatch));
                }
                for &p in callee.params.iter().rev() {
                    ctx.pop(&mut st, pc, p.kind())?;
                }
                if !callee.is_static {
                    ctx.pop(&mut st, pc, Kind::R)?;
                }
                if let Some(r) = callee.ret {
                    st.stack.push(r.kind());
                }
            }
            Return => {
                if ret_kind.is_some() {
                    return Err(ctx.err(pc, VerifyErrorKind::ReturnMismatch));
                }
            }
            ReturnValue => match ret_kind {
                None => return Err(ctx.err(pc, VerifyErrorKind::ReturnMismatch)),
                Some(expected) => {
                    let found = ctx.pop_any(&mut st, pc)?;
                    if found != expected {
                        return Err(ctx.err(pc, VerifyErrorKind::KindMismatch { expected, found }));
                    }
                }
            },
            MonitorEnter | MonitorExit => {
                ctx.pop(&mut st, pc, Kind::R)?;
            }
        }

        max_stack = max_stack.max(st.stack.len() as u16);

        // Successors.
        if let Some(t) = instr.branch_target() {
            next.push(t as usize);
        }
        if !instr.is_terminator() {
            if pc + 1 >= code.len() {
                return Err(ctx.err(pc + 1, VerifyErrorKind::FallsOffEnd));
            }
            next.push(pc + 1);
        }

        for succ in next {
            match &mut states[succ] {
                None => {
                    states[succ] = Some(st.clone());
                    work.push_back(succ);
                }
                Some(existing) => {
                    let changed = existing.merge(&st).map_err(|k| ctx.err(succ, k))?;
                    if changed {
                        work.push_back(succ);
                    }
                }
            }
        }
    }

    let ref_maps = states
        .iter()
        .map(|st| st.as_ref().map(RefMap::from_state).unwrap_or_default())
        .collect();
    Ok(MethodInfo {
        max_stack,
        max_locals: def.max_locals,
        ref_maps,
    })
}

fn conv(ctx: &Ctx<'_>, st: &mut State, pc: usize, from: Kind, to: Kind) -> Result<(), VerifyError> {
    ctx.pop(st, pc, from)?;
    st.stack.push(to);
    Ok(())
}

/// Verify every method in a program. Returns per-method info indexed by
/// `MethodId`.
pub fn verify_program(program: &Program) -> Result<Vec<MethodInfo>, VerifyError> {
    (0..program.methods.len())
        .map(|i| verify_method(program, MethodId(i as u32)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::MethodBuilder;
    use crate::bytecode::Cond;
    use crate::class::MethodBody;
    use crate::program::ProgramBuilder;
    use crate::types::{ElemTy, Ty};

    fn single_method_program(
        params: Vec<Ty>,
        ret: Option<Ty>,
        max_locals: u16,
        code: Vec<Instr>,
    ) -> (Program, MethodId) {
        let mut b = ProgramBuilder::new();
        let c = b.add_class("T", None);
        let m = b.add_static_method(c, "m", params, ret, max_locals, MethodBody::Bytecode(code));
        (b.finish().unwrap(), m)
    }

    #[test]
    fn verifies_simple_arithmetic() {
        let mut mb = MethodBuilder::new();
        mb.const_i32(2).const_i32(3).iadd().return_value();
        let (p, m) = single_method_program(vec![], Some(Ty::Int), 0, mb.finish());
        let info = verify_method(&p, m).unwrap();
        assert_eq!(info.max_stack, 2);
    }

    #[test]
    fn ref_maps_track_locals_and_stack() {
        // m(ref a, int b): push null, push a, store into local 2, return.
        let mut mb = MethodBuilder::new();
        mb.const_null().load(0).store(2).pop().return_void();
        let (p, m) =
            single_method_program(vec![Ty::Array(ElemTy::Int), Ty::Int], None, 3, mb.finish());
        let info = verify_method(&p, m).unwrap();
        assert_eq!(info.max_locals, 3);
        assert_eq!(info.ref_maps.len(), 5);

        // Entry: local 0 is the ref param, local 1 the int, 2 uninit.
        let at0 = &info.ref_maps[0];
        assert_eq!(at0.stack_depth, 0);
        assert!(at0.local_is_ref(0));
        assert!(!at0.local_is_ref(1));
        assert!(!at0.local_is_ref(2));

        // After ConstNull + Load(0): two refs on the stack at pc 2.
        let at2 = &info.ref_maps[2];
        assert_eq!(at2.stack_depth, 2);
        assert!(at2.stack_is_ref(0) && at2.stack_is_ref(1));

        // After Store(2): local 2 is now a ref, stack holds the null.
        let at3 = &info.ref_maps[3];
        assert_eq!(at3.stack_depth, 1);
        assert!(at3.local_is_ref(2));
        assert!(at3.stack_is_ref(0));
    }

    #[test]
    fn rejects_stack_underflow() {
        let (p, m) = single_method_program(vec![], None, 0, vec![Instr::Pop, Instr::Return]);
        let err = verify_method(&p, m).unwrap_err();
        assert_eq!(err.kind, VerifyErrorKind::StackUnderflow);
    }

    #[test]
    fn rejects_kind_mismatch() {
        let (p, m) = single_method_program(
            vec![],
            Some(Ty::Int),
            0,
            vec![
                Instr::ConstF32(1.0),
                Instr::ConstF32(2.0),
                Instr::IAdd,
                Instr::ReturnValue,
            ],
        );
        let err = verify_method(&p, m).unwrap_err();
        assert!(matches!(err.kind, VerifyErrorKind::KindMismatch { .. }));
    }

    #[test]
    fn rejects_uninitialised_local() {
        let (p, m) = single_method_program(
            vec![],
            Some(Ty::Int),
            2,
            vec![Instr::Load(1), Instr::ReturnValue],
        );
        let err = verify_method(&p, m).unwrap_err();
        assert_eq!(err.kind, VerifyErrorKind::UninitialisedLocal(1));
    }

    #[test]
    fn params_initialise_locals() {
        let (p, m) = single_method_program(
            vec![Ty::Int, Ty::Double],
            Some(Ty::Double),
            2,
            vec![Instr::Load(1), Instr::ReturnValue],
        );
        verify_method(&p, m).unwrap();
    }

    #[test]
    fn rejects_fall_off_end() {
        let (p, m) = single_method_program(vec![], None, 0, vec![Instr::ConstI32(1), Instr::Pop]);
        let err = verify_method(&p, m).unwrap_err();
        assert_eq!(err.kind, VerifyErrorKind::FallsOffEnd);
    }

    #[test]
    fn rejects_empty_method() {
        let (p, m) = single_method_program(vec![], None, 0, vec![]);
        let err = verify_method(&p, m).unwrap_err();
        assert_eq!(err.kind, VerifyErrorKind::FallsOffEnd);
    }

    #[test]
    fn rejects_bad_branch_target() {
        let (p, m) = single_method_program(vec![], None, 0, vec![Instr::Goto(99), Instr::Return]);
        let err = verify_method(&p, m).unwrap_err();
        assert_eq!(err.kind, VerifyErrorKind::BadBranchTarget(99));
    }

    #[test]
    fn rejects_return_mismatch() {
        let (p, m) = single_method_program(vec![], Some(Ty::Int), 0, vec![Instr::Return]);
        let err = verify_method(&p, m).unwrap_err();
        assert_eq!(err.kind, VerifyErrorKind::ReturnMismatch);

        let (p, m) = single_method_program(
            vec![],
            None,
            0,
            vec![Instr::ConstI32(1), Instr::ReturnValue],
        );
        let err = verify_method(&p, m).unwrap_err();
        assert_eq!(err.kind, VerifyErrorKind::ReturnMismatch);
    }

    #[test]
    fn loop_with_merge_verifies() {
        let mut mb = MethodBuilder::new();
        // i = 10; while (i > 0) i -= 1; return i;
        let top = mb.label();
        mb.const_i32(10).store(0);
        mb.place(top);
        mb.load(0).const_i32(1).isub().store(0);
        mb.load(0).if_i(Cond::Gt, top);
        mb.load(0).return_value();
        let (p, m) = single_method_program(vec![], Some(Ty::Int), 1, mb.finish());
        verify_method(&p, m).unwrap();
    }

    #[test]
    fn merge_with_different_stack_heights_rejected() {
        let mut mb = MethodBuilder::new();
        let join = mb.label();
        let alt = mb.label();
        mb.const_i32(0).if_i(Cond::Eq, alt);
        mb.const_i32(1).goto(join); // stack height 1 at join
        mb.place(alt);
        mb.place(join); // fall-through from alt has height 0
        mb.return_void();
        let (p, m) = single_method_program(vec![], None, 0, mb.finish());
        let err = verify_method(&p, m).unwrap_err();
        assert_eq!(err.kind, VerifyErrorKind::MergeConflict);
    }

    #[test]
    fn conflicting_local_kinds_merge_to_conflict_then_fail_on_load() {
        let mut mb = MethodBuilder::new();
        let alt = mb.label();
        let join = mb.label();
        mb.const_i32(0).if_i(Cond::Eq, alt);
        mb.const_i32(1).store(0);
        mb.goto(join);
        mb.place(alt);
        mb.const_f32(1.0).store(0);
        mb.place(join);
        mb.load(0).pop().return_void();
        let (p, m) = single_method_program(vec![], None, 1, mb.finish());
        let err = verify_method(&p, m).unwrap_err();
        assert_eq!(err.kind, VerifyErrorKind::UninitialisedLocal(0));
    }

    #[test]
    fn retyping_a_local_on_straight_line_is_allowed() {
        let mut mb = MethodBuilder::new();
        mb.const_i32(1).store(0);
        mb.const_f64(2.0).store(0);
        mb.load(0).pop().return_void();
        let (p, m) = single_method_program(vec![], None, 1, mb.finish());
        verify_method(&p, m).unwrap();
    }

    #[test]
    fn field_staticness_checked() {
        let mut b = ProgramBuilder::new();
        let c = b.add_class("T", None);
        let f = b.add_field(c, "x", Ty::Int);
        let m = b.add_static_method(
            c,
            "m",
            vec![],
            Some(Ty::Int),
            0,
            MethodBody::Bytecode(vec![Instr::GetStatic(f), Instr::ReturnValue]),
        );
        let p = b.finish().unwrap();
        let err = verify_method(&p, m).unwrap_err();
        assert_eq!(err.kind, VerifyErrorKind::StaticnessMismatch);
    }

    #[test]
    fn invoke_pops_args_and_pushes_ret() {
        let mut b = ProgramBuilder::new();
        let c = b.add_class("T", None);
        let callee = b.add_static_method(
            c,
            "add",
            vec![Ty::Int, Ty::Int],
            Some(Ty::Int),
            2,
            MethodBody::Bytecode(vec![
                Instr::Load(0),
                Instr::Load(1),
                Instr::IAdd,
                Instr::ReturnValue,
            ]),
        );
        let caller = b.add_static_method(
            c,
            "m",
            vec![],
            Some(Ty::Int),
            0,
            MethodBody::Bytecode(vec![
                Instr::ConstI32(1),
                Instr::ConstI32(2),
                Instr::InvokeStatic(callee),
                Instr::ReturnValue,
            ]),
        );
        let p = b.finish().unwrap();
        verify_method(&p, callee).unwrap();
        verify_method(&p, caller).unwrap();
        assert_eq!(verify_program(&p).unwrap().len(), 2);
    }

    #[test]
    fn virtual_invoke_on_static_method_rejected() {
        let mut b = ProgramBuilder::new();
        let c = b.add_class("T", None);
        let callee = b.add_static_method(
            c,
            "s",
            vec![],
            None,
            0,
            MethodBody::Bytecode(vec![Instr::Return]),
        );
        let caller = b.add_static_method(
            c,
            "m",
            vec![],
            None,
            0,
            MethodBody::Bytecode(vec![
                Instr::ConstNull,
                Instr::InvokeVirtual(callee),
                Instr::Return,
            ]),
        );
        let p = b.finish().unwrap();
        let err = verify_method(&p, caller).unwrap_err();
        assert_eq!(err.kind, VerifyErrorKind::StaticnessMismatch);
    }

    #[test]
    fn array_ops_verify() {
        let mut mb = MethodBuilder::new();
        mb.const_i32(10).new_array(ElemTy::Float).store(0);
        mb.load(0).const_i32(3).const_f32(1.5).astore(ElemTy::Float);
        mb.load(0).const_i32(3).aload(ElemTy::Float).pop();
        mb.load(0).array_length().return_value();
        let (p, m) = single_method_program(vec![], Some(Ty::Int), 1, mb.finish());
        verify_method(&p, m).unwrap();
    }

    #[test]
    fn native_methods_verify_trivially() {
        let mut b = ProgramBuilder::new();
        let c = b.add_class("T", None);
        let m = b.add_native_method(
            c,
            "nat",
            vec![Ty::Int],
            None,
            crate::class::NativeId(0),
            crate::class::NativeKind::FastSyscall,
        );
        let p = b.finish().unwrap();
        assert_eq!(verify_method(&p, m).unwrap().max_stack, 0);
    }
}
