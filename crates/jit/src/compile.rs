//! The baseline compiler: one pass, bytecode → machine ops, per core.
//!
//! The lowering is 1:1 (each guest instruction becomes exactly one
//! machine op), so branch targets carry over unchanged. This mirrors the
//! paper's use of the *baseline* (non-optimising) compiler for both PPE
//! and SPE code in every experiment (§4).

use crate::machine_op::{ArithOp, BranchKind, MachineOp};
use crate::registry::CompiledMethod;
use hera_cell::CoreKind;
use hera_isa::{Instr, MethodId, Program};
use hera_mem::ProgramLayout;
use std::fmt;

/// Compilation failures (all indicate malformed input that verification
/// would have rejected; surfaced as errors for robustness).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CompileError {
    /// The method has no bytecode body (native methods are not
    /// compiled; the runtime bridges them instead).
    NativeMethod(MethodId),
    /// A virtual call target has no vtable slot (i.e. it is not a
    /// virtually dispatchable method).
    NoVtableSlot(MethodId),
    /// The method failed verification. The baseline compiler derives
    /// frame sizes and GC maps from the verifier, so unverifiable code
    /// cannot be compiled even when whole-program verification was
    /// disabled in the VM configuration.
    Unverifiable(hera_isa::VerifyError),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::NativeMethod(m) => write!(f, "method #{} is native", m.0),
            CompileError::NoVtableSlot(m) => {
                write!(f, "method #{} has no vtable slot", m.0)
            }
            CompileError::Unverifiable(e) => write!(f, "unverifiable method: {e}"),
        }
    }
}

impl std::error::Error for CompileError {}

/// Estimated native code bytes for one machine op on a core.
///
/// SPE instructions are 4 bytes; baseline-compiled stack ops expand to a
/// handful of instructions, and software-cache accesses inline a hash
/// probe and miss stub, so they are much fatter. These estimates drive
/// the SPE code cache occupancy (Figure 7); only relative sizes matter.
fn op_code_bytes(op: &MachineOp, core: CoreKind) -> u32 {
    let unit = 4; // both ISAs use 4-byte instructions
    let instrs = match op {
        MachineOp::PushI32(_)
        | MachineOp::PushI64(_)
        | MachineOp::PushF32(_)
        | MachineOp::PushF64(_)
        | MachineOp::PushNull => 3,
        MachineOp::Pop | MachineOp::Dup | MachineOp::DupX1 | MachineOp::Swap => 2,
        MachineOp::LoadLocal(_) | MachineOp::StoreLocal(_) => 3,
        MachineOp::IncLocal(_, _) => 4,
        MachineOp::Arith(a) if a.arity() == 1 => 4,
        MachineOp::Arith(_) => 6,
        MachineOp::Branch(_, _) => 3,
        MachineOp::NewObject { .. } | MachineOp::NewArray { .. } => 10,
        MachineOp::InstanceOf { .. } => 8,
        // Direct (PPE) heap access: load/store plus null/bounds checks.
        MachineOp::GetFieldDirect { .. } | MachineOp::PutFieldDirect { .. } => 5,
        MachineOp::GetStaticDirect { .. } | MachineOp::PutStaticDirect { .. } => 4,
        MachineOp::ArrLoadDirect { .. } | MachineOp::ArrStoreDirect { .. } => 7,
        MachineOp::ArrLenDirect => 3,
        // Cached (SPE) heap access: inline hash probe + miss call stub.
        MachineOp::GetFieldCached { .. } | MachineOp::PutFieldCached { .. } => 18,
        MachineOp::GetStaticCached { .. } | MachineOp::PutStaticCached { .. } => 14,
        MachineOp::ArrLoadCached { .. } | MachineOp::ArrStoreCached { .. } => 22,
        MachineOp::ArrLenCached => 10,
        MachineOp::InvokeStatic { .. } => 8,
        MachineOp::InvokeVirtual { .. } => {
            // SPE dispatch walks TOC → TIB → code (double dereference).
            match core {
                CoreKind::Ppe => 10,
                CoreKind::Spe => 16,
            }
        }
        MachineOp::Return { .. } => 6,
        MachineOp::MonitorEnter | MachineOp::MonitorExit => 12,
    };
    instrs * unit
}

/// Cycles the baseline compiler spends per lowered op, plus fixed cost.
const COMPILE_CYCLES_PER_OP: u64 = 120;
const COMPILE_CYCLES_FIXED: u64 = 1500;

/// Compile a bytecode method for one core kind.
///
/// Field offsets come from the [`ProgramLayout`]; volatile flags are
/// baked into the access ops so the SPE interpreter can apply the JMM
/// coherence actions without metadata lookups.
pub fn compile_method(
    program: &Program,
    layout: &ProgramLayout,
    method: MethodId,
    core: CoreKind,
) -> Result<CompiledMethod, CompileError> {
    let def = program.method(method);
    let code = def.code().ok_or(CompileError::NativeMethod(method))?;

    // Frame sizing and GC maps come from the verifier's dataflow; the
    // 1:1 lowering below keeps its per-pc facts valid for the op stream.
    let info = hera_isa::verify_method(program, method).map_err(CompileError::Unverifiable)?;

    let mut ops = Vec::with_capacity(code.len());
    for &instr in code {
        ops.push(lower(program, layout, instr, core)?);
    }

    let code_bytes: u32 = 32 + ops.iter().map(|op| op_code_bytes(op, core)).sum::<u32>();
    let compile_cycles = COMPILE_CYCLES_FIXED + COMPILE_CYCLES_PER_OP * ops.len() as u64;

    Ok(CompiledMethod {
        method,
        core,
        ops,
        code_bytes,
        compile_cycles,
        max_stack: info.max_stack,
        max_locals: info.max_locals,
        ref_maps: info.ref_maps,
    })
}

fn lower(
    program: &Program,
    layout: &ProgramLayout,
    instr: Instr,
    core: CoreKind,
) -> Result<MachineOp, CompileError> {
    use Instr::*;
    Ok(match instr {
        ConstI32(v) => MachineOp::PushI32(v),
        ConstI64(v) => MachineOp::PushI64(v),
        ConstF32(v) => MachineOp::PushF32(v),
        ConstF64(v) => MachineOp::PushF64(v),
        ConstNull => MachineOp::PushNull,
        Pop => MachineOp::Pop,
        Dup => MachineOp::Dup,
        DupX1 => MachineOp::DupX1,
        Swap => MachineOp::Swap,
        Load(s) => MachineOp::LoadLocal(s),
        Store(s) => MachineOp::StoreLocal(s),
        IInc(s, d) => MachineOp::IncLocal(s, d),

        IAdd => MachineOp::Arith(ArithOp::IAdd),
        ISub => MachineOp::Arith(ArithOp::ISub),
        IMul => MachineOp::Arith(ArithOp::IMul),
        IDiv => MachineOp::Arith(ArithOp::IDiv),
        IRem => MachineOp::Arith(ArithOp::IRem),
        INeg => MachineOp::Arith(ArithOp::INeg),
        IShl => MachineOp::Arith(ArithOp::IShl),
        IShr => MachineOp::Arith(ArithOp::IShr),
        IUShr => MachineOp::Arith(ArithOp::IUShr),
        IAnd => MachineOp::Arith(ArithOp::IAnd),
        IOr => MachineOp::Arith(ArithOp::IOr),
        IXor => MachineOp::Arith(ArithOp::IXor),
        LAdd => MachineOp::Arith(ArithOp::LAdd),
        LSub => MachineOp::Arith(ArithOp::LSub),
        LMul => MachineOp::Arith(ArithOp::LMul),
        LDiv => MachineOp::Arith(ArithOp::LDiv),
        LRem => MachineOp::Arith(ArithOp::LRem),
        LNeg => MachineOp::Arith(ArithOp::LNeg),
        LShl => MachineOp::Arith(ArithOp::LShl),
        LShr => MachineOp::Arith(ArithOp::LShr),
        LUShr => MachineOp::Arith(ArithOp::LUShr),
        LAnd => MachineOp::Arith(ArithOp::LAnd),
        LOr => MachineOp::Arith(ArithOp::LOr),
        LXor => MachineOp::Arith(ArithOp::LXor),
        FAdd => MachineOp::Arith(ArithOp::FAdd),
        FSub => MachineOp::Arith(ArithOp::FSub),
        FMul => MachineOp::Arith(ArithOp::FMul),
        FDiv => MachineOp::Arith(ArithOp::FDiv),
        FNeg => MachineOp::Arith(ArithOp::FNeg),
        FSqrt => MachineOp::Arith(ArithOp::FSqrt),
        DAdd => MachineOp::Arith(ArithOp::DAdd),
        DSub => MachineOp::Arith(ArithOp::DSub),
        DMul => MachineOp::Arith(ArithOp::DMul),
        DDiv => MachineOp::Arith(ArithOp::DDiv),
        DNeg => MachineOp::Arith(ArithOp::DNeg),
        DSqrt => MachineOp::Arith(ArithOp::DSqrt),
        I2L => MachineOp::Arith(ArithOp::I2L),
        I2F => MachineOp::Arith(ArithOp::I2F),
        I2D => MachineOp::Arith(ArithOp::I2D),
        L2I => MachineOp::Arith(ArithOp::L2I),
        L2F => MachineOp::Arith(ArithOp::L2F),
        L2D => MachineOp::Arith(ArithOp::L2D),
        F2I => MachineOp::Arith(ArithOp::F2I),
        F2D => MachineOp::Arith(ArithOp::F2D),
        D2I => MachineOp::Arith(ArithOp::D2I),
        D2L => MachineOp::Arith(ArithOp::D2L),
        D2F => MachineOp::Arith(ArithOp::D2F),
        I2B => MachineOp::Arith(ArithOp::I2B),
        I2S => MachineOp::Arith(ArithOp::I2S),
        LCmp => MachineOp::Arith(ArithOp::LCmp),
        FCmpL => MachineOp::Arith(ArithOp::FCmpL),
        FCmpG => MachineOp::Arith(ArithOp::FCmpG),
        DCmpL => MachineOp::Arith(ArithOp::DCmpL),
        DCmpG => MachineOp::Arith(ArithOp::DCmpG),

        Goto(t) => MachineOp::Branch(BranchKind::Always, t),
        IfI(c, t) => MachineOp::Branch(BranchKind::IfI(c), t),
        IfICmp(c, t) => MachineOp::Branch(BranchKind::IfICmp(c), t),
        IfNull(t) => MachineOp::Branch(BranchKind::IfNull, t),
        IfNonNull(t) => MachineOp::Branch(BranchKind::IfNonNull, t),
        IfACmpEq(t) => MachineOp::Branch(BranchKind::IfACmpEq, t),
        IfACmpNe(t) => MachineOp::Branch(BranchKind::IfACmpNe, t),

        New(c) => MachineOp::NewObject { class: c },
        InstanceOf(c) => MachineOp::InstanceOf { class: c },
        NewArray(e) => MachineOp::NewArray { elem: e },

        GetField(f) => {
            let (offset, ty, volatile) = field_facts(program, layout, f);
            match core {
                CoreKind::Ppe => MachineOp::GetFieldDirect {
                    offset,
                    ty,
                    volatile,
                },
                CoreKind::Spe => MachineOp::GetFieldCached {
                    offset,
                    ty,
                    volatile,
                },
            }
        }
        PutField(f) => {
            let (offset, ty, volatile) = field_facts(program, layout, f);
            match core {
                CoreKind::Ppe => MachineOp::PutFieldDirect {
                    offset,
                    ty,
                    volatile,
                },
                CoreKind::Spe => MachineOp::PutFieldCached {
                    offset,
                    ty,
                    volatile,
                },
            }
        }
        GetStatic(f) => {
            let (offset, ty, volatile) = field_facts(program, layout, f);
            match core {
                CoreKind::Ppe => MachineOp::GetStaticDirect {
                    offset,
                    ty,
                    volatile,
                },
                CoreKind::Spe => MachineOp::GetStaticCached {
                    offset,
                    ty,
                    volatile,
                },
            }
        }
        PutStatic(f) => {
            let (offset, ty, volatile) = field_facts(program, layout, f);
            match core {
                CoreKind::Ppe => MachineOp::PutStaticDirect {
                    offset,
                    ty,
                    volatile,
                },
                CoreKind::Spe => MachineOp::PutStaticCached {
                    offset,
                    ty,
                    volatile,
                },
            }
        }
        ArrayLength => match core {
            CoreKind::Ppe => MachineOp::ArrLenDirect,
            CoreKind::Spe => MachineOp::ArrLenCached,
        },
        ALoad(e) => match core {
            CoreKind::Ppe => MachineOp::ArrLoadDirect { elem: e },
            CoreKind::Spe => MachineOp::ArrLoadCached { elem: e },
        },
        AStore(e) => match core {
            CoreKind::Ppe => MachineOp::ArrStoreDirect { elem: e },
            CoreKind::Spe => MachineOp::ArrStoreCached { elem: e },
        },

        InvokeStatic(m) => MachineOp::InvokeStatic { method: m },
        InvokeVirtual(m) => {
            let slot = program
                .method(m)
                .vtable_slot
                .ok_or(CompileError::NoVtableSlot(m))?;
            MachineOp::InvokeVirtual { slot, declared: m }
        }
        Return => MachineOp::Return { has_value: false },
        ReturnValue => MachineOp::Return { has_value: true },
        MonitorEnter => MachineOp::MonitorEnter,
        MonitorExit => MachineOp::MonitorExit,
    })
}

fn field_facts(
    program: &Program,
    layout: &ProgramLayout,
    f: hera_isa::FieldId,
) -> (u32, hera_isa::Ty, bool) {
    let fd = program.field(f);
    (layout.offset_of(f), fd.ty, fd.volatile)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hera_isa::{MethodBody, ProgramBuilder, Ty};

    fn fixture() -> (Program, ProgramLayout, MethodId) {
        let mut b = ProgramBuilder::new();
        let c = b.add_class("C", None);
        let f = b.add_field(c, "x", Ty::Int);
        let v = b.add_volatile_field(c, "flag", Ty::Int);
        let m = b.add_static_method(
            c,
            "m",
            vec![Ty::Ref(c)],
            Some(Ty::Int),
            1,
            MethodBody::Bytecode(vec![
                Instr::Load(0),
                Instr::GetField(f),
                Instr::Load(0),
                Instr::GetField(v),
                Instr::IAdd,
                Instr::ReturnValue,
            ]),
        );
        let p = b.finish().unwrap();
        let layout = ProgramLayout::compute(&p);
        (p, layout, m)
    }

    #[test]
    fn ppe_compilation_uses_direct_ops() {
        let (p, l, m) = fixture();
        let c = compile_method(&p, &l, m, CoreKind::Ppe).unwrap();
        assert!(c.ops.iter().any(|o| o.is_direct_access()));
        assert!(!c.ops.iter().any(|o| o.is_cached_access()));
        assert_eq!(c.core, CoreKind::Ppe);
    }

    #[test]
    fn spe_compilation_uses_cached_ops() {
        let (p, l, m) = fixture();
        let c = compile_method(&p, &l, m, CoreKind::Spe).unwrap();
        assert!(c.ops.iter().any(|o| o.is_cached_access()));
        assert!(!c.ops.iter().any(|o| o.is_direct_access()));
    }

    #[test]
    fn volatile_flag_is_baked_in() {
        let (p, l, m) = fixture();
        let c = compile_method(&p, &l, m, CoreKind::Spe).unwrap();
        let volatiles: Vec<bool> = c
            .ops
            .iter()
            .filter_map(|o| match o {
                MachineOp::GetFieldCached { volatile, .. } => Some(*volatile),
                _ => None,
            })
            .collect();
        assert_eq!(volatiles, vec![false, true]);
    }

    #[test]
    fn lowering_is_one_to_one_so_targets_survive() {
        let mut b = ProgramBuilder::new();
        let c = b.add_class("C", None);
        let m = b.add_static_method(
            c,
            "loop",
            vec![],
            None,
            1,
            MethodBody::Bytecode(vec![
                Instr::ConstI32(10),
                Instr::Store(0),
                Instr::Load(0),
                Instr::IfI(hera_isa::Cond::Le, 6),
                Instr::IInc(0, -1),
                Instr::Goto(2),
                Instr::Return,
            ]),
        );
        let p = b.finish().unwrap();
        let l = ProgramLayout::compute(&p);
        let comp = compile_method(&p, &l, m, CoreKind::Spe).unwrap();
        assert_eq!(comp.ops.len(), 7);
        assert_eq!(comp.ops[5], MachineOp::Branch(BranchKind::Always, 2));
    }

    #[test]
    fn spe_code_is_fatter_than_ppe_code_for_memory_heavy_methods() {
        let (p, l, m) = fixture();
        let ppe = compile_method(&p, &l, m, CoreKind::Ppe).unwrap();
        let spe = compile_method(&p, &l, m, CoreKind::Spe).unwrap();
        assert!(spe.code_bytes > ppe.code_bytes);
    }

    #[test]
    fn native_methods_are_rejected() {
        let mut b = ProgramBuilder::new();
        let c = b.add_class("C", None);
        let m = b.add_native_method(
            c,
            "nat",
            vec![],
            None,
            hera_isa::NativeId(0),
            hera_isa::class::NativeKind::Jni,
        );
        let p = b.finish().unwrap();
        let l = ProgramLayout::compute(&p);
        assert_eq!(
            compile_method(&p, &l, m, CoreKind::Ppe),
            Err(CompileError::NativeMethod(m))
        );
    }

    #[test]
    fn virtual_dispatch_resolves_vtable_slot() {
        let mut b = ProgramBuilder::new();
        let c = b.add_class("C", None);
        let vm = b.add_virtual_method(
            c,
            "virt",
            vec![],
            None,
            1,
            MethodBody::Bytecode(vec![Instr::Return]),
        );
        let caller = b.add_static_method(
            c,
            "go",
            vec![Ty::Ref(c)],
            None,
            1,
            MethodBody::Bytecode(vec![
                Instr::Load(0),
                Instr::InvokeVirtual(vm),
                Instr::Return,
            ]),
        );
        let p = b.finish().unwrap();
        let l = ProgramLayout::compute(&p);
        let comp = compile_method(&p, &l, caller, CoreKind::Ppe).unwrap();
        assert_eq!(
            comp.ops[1],
            MachineOp::InvokeVirtual {
                slot: 0,
                declared: vm
            }
        );
    }

    #[test]
    fn compile_cost_scales_with_method_size() {
        let (p, l, m) = fixture();
        let c = compile_method(&p, &l, m, CoreKind::Ppe).unwrap();
        assert_eq!(c.compile_cycles, 1500 + 120 * 6);
    }
}
