//! # hera-jit — the per-core-type baseline compiler
//!
//! JikesRVM (and thus Hera-JVM) is a non-interpreting JVM: every method
//! is compiled to machine code before execution. Hera-JVM adds a second
//! back-end so the same bytecode can be compiled for either the PPE or
//! the SPE instruction set, *on demand, per core type*: "a method will
//! only be compiled for a particular core architecture if it is to be
//! executed by a thread running on that core type" (§3.1).
//!
//! This crate is that compiler pair. It lowers verified guest bytecode
//! ([`hera_isa::Instr`]) into resolved [`MachineOp`] streams:
//!
//! * **PPE code** uses *direct* heap operations — loads/stores that go
//!   through the PPE's hardware cache hierarchy;
//! * **SPE code** uses *software-cache* operations — every main-memory
//!   access becomes a call into the SPE data cache (`hera-softcache`),
//!   and field offsets/volatile flags are baked in at compile time.
//!
//! The two streams are deliberately not interchangeable (you cannot run
//! SPE code on the PPE), which is what makes the [`registry`]'s
//! "compiled once per used core type" accounting meaningful — the claim
//! behind the paper's low dual-architecture compilation overhead.

pub mod compile;
pub mod machine_op;
pub mod registry;

pub use compile::{compile_method, CompileError};
pub use machine_op::{ArithOp, BranchKind, MachineOp};
pub use registry::{CompiledMethod, MethodRegistry, RegistryStats};
