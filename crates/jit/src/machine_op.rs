//! Resolved machine operations and the arithmetic unit.

use hera_cell::ExecOp;
use hera_isa::{ClassId, Cond, ElemTy, Kind, MethodId, Slot, Trap, Ty, Value};

/// Arithmetic, conversion and comparison operations, with JVM-faithful
/// semantics (wrapping integer arithmetic, masked shifts, saturating
/// float→int conversions, NaN-biased comparisons).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ArithOp {
    /// i32 add.
    IAdd,
    /// i32 subtract.
    ISub,
    /// i32 multiply.
    IMul,
    /// i32 divide.
    IDiv,
    /// i32 remainder.
    IRem,
    /// i32 negate.
    INeg,
    /// i32 shift left.
    IShl,
    /// i32 arithmetic shift right.
    IShr,
    /// i32 logical shift right.
    IUShr,
    /// i32 and.
    IAnd,
    /// i32 or.
    IOr,
    /// i32 xor.
    IXor,
    /// i64 add.
    LAdd,
    /// i64 subtract.
    LSub,
    /// i64 multiply.
    LMul,
    /// i64 divide.
    LDiv,
    /// i64 remainder.
    LRem,
    /// i64 negate.
    LNeg,
    /// i64 shift left.
    LShl,
    /// i64 arithmetic shift right.
    LShr,
    /// i64 logical shift right.
    LUShr,
    /// i64 and.
    LAnd,
    /// i64 or.
    LOr,
    /// i64 xor.
    LXor,
    /// f32 add.
    FAdd,
    /// f32 subtract.
    FSub,
    /// f32 multiply.
    FMul,
    /// f32 divide.
    FDiv,
    /// f32 negate.
    FNeg,
    /// f32 square root.
    FSqrt,
    /// f64 add.
    DAdd,
    /// f64 subtract.
    DSub,
    /// f64 multiply.
    DMul,
    /// f64 divide.
    DDiv,
    /// f64 negate.
    DNeg,
    /// f64 square root.
    DSqrt,
    /// i32 → i64.
    I2L,
    /// i32 → f32.
    I2F,
    /// i32 → f64.
    I2D,
    /// i64 → i32.
    L2I,
    /// i64 → f32.
    L2F,
    /// i64 → f64.
    L2D,
    /// f32 → i32 (saturating).
    F2I,
    /// f32 → f64.
    F2D,
    /// f64 → i32 (saturating).
    D2I,
    /// f64 → i64 (saturating).
    D2L,
    /// f64 → f32.
    D2F,
    /// i32 → i8, sign-extended.
    I2B,
    /// i32 → i16, sign-extended.
    I2S,
    /// i64 three-way compare.
    LCmp,
    /// f32 compare, NaN → -1.
    FCmpL,
    /// f32 compare, NaN → +1.
    FCmpG,
    /// f64 compare, NaN → -1.
    DCmpL,
    /// f64 compare, NaN → +1.
    DCmpG,
}

impl ArithOp {
    /// Number of operands popped.
    pub fn arity(self) -> usize {
        use ArithOp::*;
        match self {
            INeg | LNeg | FNeg | DNeg | FSqrt | DSqrt | I2L | I2F | I2D | L2I | L2F | L2D | F2I
            | F2D | D2I | D2L | D2F | I2B | I2S => 1,
            _ => 2,
        }
    }

    /// The abstract execution op this is charged as.
    pub fn exec_op(self) -> ExecOp {
        use ArithOp::*;
        match self {
            IAdd | ISub | INeg | IShl | IShr | IUShr | IAnd | IOr | IXor | LAdd | LSub | LNeg
            | LShl | LShr | LUShr | LAnd | LOr | LXor => ExecOp::IntAlu,
            IMul | LMul => ExecOp::IntMul,
            IDiv | IRem | LDiv | LRem => ExecOp::IntDiv,
            FAdd | FSub | FNeg => ExecOp::FloatAdd,
            FMul => ExecOp::FloatMul,
            FDiv => ExecOp::FloatDiv,
            FSqrt => ExecOp::FloatSqrt,
            DAdd | DSub | DNeg => ExecOp::DoubleAdd,
            DMul => ExecOp::DoubleMul,
            DDiv => ExecOp::DoubleDiv,
            DSqrt => ExecOp::DoubleSqrt,
            I2L | I2F | I2D | L2I | L2F | L2D | F2I | F2D | D2I | D2L | D2F | I2B | I2S => {
                ExecOp::Convert
            }
            LCmp | FCmpL | FCmpG | DCmpL | DCmpG => ExecOp::Compare,
        }
    }

    /// The verification kind of this op's result.
    pub fn result_kind(self) -> Kind {
        use ArithOp::*;
        match self {
            IAdd | ISub | IMul | IDiv | IRem | INeg | IShl | IShr | IUShr | IAnd | IOr | IXor
            | L2I | F2I | D2I | I2B | I2S | LCmp | FCmpL | FCmpG | DCmpL | DCmpG => Kind::I,
            LAdd | LSub | LMul | LDiv | LRem | LNeg | LShl | LShr | LUShr | LAnd | LOr | LXor
            | I2L | D2L => Kind::L,
            FAdd | FSub | FMul | FDiv | FNeg | FSqrt | I2F | L2F | D2F => Kind::F,
            DAdd | DSub | DMul | DDiv | DNeg | DSqrt | I2D | L2D | F2D => Kind::D,
        }
    }

    /// Apply a unary operation to an untagged slot.
    ///
    /// The verifier proved the operand kind, so the slot is read with
    /// the op's own width — no runtime tag exists to check.
    ///
    /// # Panics
    ///
    /// Panics if called on a binary op (verified code cannot).
    #[inline]
    pub fn apply1_slot(self, a: Slot) -> Slot {
        use ArithOp::*;
        match self {
            INeg => Slot::from_i32(a.i32().wrapping_neg()),
            LNeg => Slot::from_i64(a.i64().wrapping_neg()),
            FNeg => Slot::from_f32(-a.f32()),
            DNeg => Slot::from_f64(-a.f64()),
            FSqrt => Slot::from_f32(a.f32().sqrt()),
            DSqrt => Slot::from_f64(a.f64().sqrt()),
            I2L => Slot::from_i64(a.i32() as i64),
            I2F => Slot::from_f32(a.i32() as f32),
            I2D => Slot::from_f64(a.i32() as f64),
            L2I => Slot::from_i32(a.i64() as i32),
            L2F => Slot::from_f32(a.i64() as f32),
            L2D => Slot::from_f64(a.i64() as f64),
            F2I => Slot::from_i32(f2i(a.f32() as f64, i32::MIN as i64, i32::MAX as i64) as i32),
            F2D => Slot::from_f64(a.f32() as f64),
            D2I => Slot::from_i32(f2i(a.f64(), i32::MIN as i64, i32::MAX as i64) as i32),
            D2L => Slot::from_i64(f2l(a.f64())),
            D2F => Slot::from_f32(a.f64() as f32),
            I2B => Slot::from_i32(a.i32() as i8 as i32),
            I2S => Slot::from_i32(a.i32() as i16 as i32),
            other => panic!("apply1 on binary op {other:?}"),
        }
    }

    /// Apply a binary operation to untagged slots (`a op b`, with `b`
    /// popped first). Division and remainder trap on a zero divisor.
    #[inline]
    pub fn apply2_slot(self, a: Slot, b: Slot) -> Result<Slot, Trap> {
        use ArithOp::*;
        Ok(match self {
            IAdd => Slot::from_i32(a.i32().wrapping_add(b.i32())),
            ISub => Slot::from_i32(a.i32().wrapping_sub(b.i32())),
            IMul => Slot::from_i32(a.i32().wrapping_mul(b.i32())),
            IDiv => {
                let d = b.i32();
                if d == 0 {
                    return Err(Trap::DivisionByZero);
                }
                Slot::from_i32(a.i32().wrapping_div(d))
            }
            IRem => {
                let d = b.i32();
                if d == 0 {
                    return Err(Trap::DivisionByZero);
                }
                Slot::from_i32(a.i32().wrapping_rem(d))
            }
            IShl => Slot::from_i32(a.i32().wrapping_shl(b.i32() as u32 & 31)),
            IShr => Slot::from_i32(a.i32().wrapping_shr(b.i32() as u32 & 31)),
            IUShr => Slot::from_i32(((a.i32() as u32) >> (b.i32() as u32 & 31)) as i32),
            IAnd => Slot::from_i32(a.i32() & b.i32()),
            IOr => Slot::from_i32(a.i32() | b.i32()),
            IXor => Slot::from_i32(a.i32() ^ b.i32()),
            LAdd => Slot::from_i64(a.i64().wrapping_add(b.i64())),
            LSub => Slot::from_i64(a.i64().wrapping_sub(b.i64())),
            LMul => Slot::from_i64(a.i64().wrapping_mul(b.i64())),
            LDiv => {
                let d = b.i64();
                if d == 0 {
                    return Err(Trap::DivisionByZero);
                }
                Slot::from_i64(a.i64().wrapping_div(d))
            }
            LRem => {
                let d = b.i64();
                if d == 0 {
                    return Err(Trap::DivisionByZero);
                }
                Slot::from_i64(a.i64().wrapping_rem(d))
            }
            LShl => Slot::from_i64(a.i64().wrapping_shl(b.i32() as u32 & 63)),
            LShr => Slot::from_i64(a.i64().wrapping_shr(b.i32() as u32 & 63)),
            LUShr => Slot::from_i64(((a.i64() as u64) >> (b.i32() as u32 & 63)) as i64),
            LAnd => Slot::from_i64(a.i64() & b.i64()),
            LOr => Slot::from_i64(a.i64() | b.i64()),
            LXor => Slot::from_i64(a.i64() ^ b.i64()),
            FAdd => Slot::from_f32(a.f32() + b.f32()),
            FSub => Slot::from_f32(a.f32() - b.f32()),
            FMul => Slot::from_f32(a.f32() * b.f32()),
            FDiv => Slot::from_f32(a.f32() / b.f32()),
            DAdd => Slot::from_f64(a.f64() + b.f64()),
            DSub => Slot::from_f64(a.f64() - b.f64()),
            DMul => Slot::from_f64(a.f64() * b.f64()),
            DDiv => Slot::from_f64(a.f64() / b.f64()),
            LCmp => Slot::from_i32(three_way(a.i64().cmp(&b.i64()))),
            FCmpL => Slot::from_i32(fcmp(a.f32() as f64, b.f32() as f64, -1)),
            FCmpG => Slot::from_i32(fcmp(a.f32() as f64, b.f32() as f64, 1)),
            DCmpL => Slot::from_i32(fcmp(a.f64(), b.f64(), -1)),
            DCmpG => Slot::from_i32(fcmp(a.f64(), b.f64(), 1)),
            other => panic!("apply2 on unary op {other:?}"),
        })
    }

    /// Apply a unary operation at a tagged-value boundary.
    ///
    /// # Panics
    ///
    /// Panics if called on a binary op (verified code cannot).
    pub fn apply1(self, a: Value) -> Value {
        self.apply1_slot(Slot::from_value(a))
            .to_value(self.result_kind())
    }

    /// Apply a binary operation at a tagged-value boundary (`a op b`,
    /// with `b` popped first).
    ///
    /// Division and remainder trap on a zero divisor.
    pub fn apply2(self, a: Value, b: Value) -> Result<Value, Trap> {
        self.apply2_slot(Slot::from_value(a), Slot::from_value(b))
            .map(|s| s.to_value(self.result_kind()))
    }
}

fn three_way(o: std::cmp::Ordering) -> i32 {
    match o {
        std::cmp::Ordering::Less => -1,
        std::cmp::Ordering::Equal => 0,
        std::cmp::Ordering::Greater => 1,
    }
}

fn fcmp(a: f64, b: f64, nan: i32) -> i32 {
    if a.is_nan() || b.is_nan() {
        nan
    } else if a < b {
        -1
    } else if a > b {
        1
    } else {
        0
    }
}

/// Saturating float→int per JVM semantics: NaN → 0, ±∞ → min/max.
fn f2i(v: f64, min: i64, max: i64) -> i64 {
    if v.is_nan() {
        0
    } else if v <= min as f64 {
        min
    } else if v >= max as f64 {
        max
    } else {
        v as i64
    }
}

fn f2l(v: f64) -> i64 {
    if v.is_nan() {
        0
    } else if v <= i64::MIN as f64 {
        i64::MIN
    } else if v >= i64::MAX as f64 {
        i64::MAX
    } else {
        v as i64
    }
}

/// Branch shapes in compiled code.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BranchKind {
    /// Unconditional.
    Always,
    /// Popped i32 against zero.
    IfI(Cond),
    /// Two popped i32s.
    IfICmp(Cond),
    /// Popped reference is null.
    IfNull,
    /// Popped reference is non-null.
    IfNonNull,
    /// Two popped references equal.
    IfACmpEq,
    /// Two popped references differ.
    IfACmpNe,
}

/// A resolved, core-specific machine operation.
///
/// Heap accesses come in two flavours: `*Direct` ops (PPE code — loads
/// and stores that hit the hardware cache hierarchy) and `*Cached` ops
/// (SPE code — calls into the software data cache). The compiler emits
/// exactly one flavour per compilation target, so a compiled method is
/// usable only on its target core kind.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum MachineOp {
    /// Push a constant.
    PushI32(i32),
    /// Push a constant.
    PushI64(i64),
    /// Push a constant.
    PushF32(f32),
    /// Push a constant.
    PushF64(f64),
    /// Push null.
    PushNull,
    /// Discard top of stack.
    Pop,
    /// Duplicate top of stack.
    Dup,
    /// Duplicate top under second.
    DupX1,
    /// Swap top two.
    Swap,
    /// Push local.
    LoadLocal(u16),
    /// Pop into local.
    StoreLocal(u16),
    /// In-place increment of an i32 local.
    IncLocal(u16, i16),
    /// Arithmetic / conversion / comparison.
    Arith(ArithOp),
    /// Branch to an op index.
    Branch(BranchKind, u32),
    /// Allocate an object of a class whose instance size was baked in.
    NewObject {
        /// Class to instantiate.
        class: ClassId,
    },
    /// Allocate an array.
    NewArray {
        /// Element type.
        elem: ElemTy,
    },
    /// `instanceof` test.
    InstanceOf {
        /// Class tested against.
        class: ClassId,
    },

    // ---- PPE (direct) heap access ----
    /// PPE: load an instance field through the hardware caches.
    GetFieldDirect {
        /// Byte offset from the object base.
        offset: u32,
        /// Field type (decides width and value kind).
        ty: Ty,
        /// Volatile flag (memory-ordering relevant on the SPE only, but
        /// kept for symmetric accounting).
        volatile: bool,
    },
    /// PPE: store an instance field.
    PutFieldDirect {
        /// Byte offset from the object base.
        offset: u32,
        /// Field type.
        ty: Ty,
        /// Volatile flag.
        volatile: bool,
    },
    /// PPE: load a static from the statics block.
    GetStaticDirect {
        /// Offset within the statics block.
        offset: u32,
        /// Field type.
        ty: Ty,
        /// Volatile flag.
        volatile: bool,
    },
    /// PPE: store a static.
    PutStaticDirect {
        /// Offset within the statics block.
        offset: u32,
        /// Field type.
        ty: Ty,
        /// Volatile flag.
        volatile: bool,
    },
    /// PPE: array element load.
    ArrLoadDirect {
        /// Element type.
        elem: ElemTy,
    },
    /// PPE: array element store.
    ArrStoreDirect {
        /// Element type.
        elem: ElemTy,
    },
    /// PPE: array length.
    ArrLenDirect,

    // ---- SPE (software-cached) heap access ----
    /// SPE: load an instance field through the software data cache.
    GetFieldCached {
        /// Byte offset from the object base.
        offset: u32,
        /// Field type.
        ty: Ty,
        /// Volatile: purge the data cache before the read (JMM).
        volatile: bool,
    },
    /// SPE: store an instance field through the software data cache.
    PutFieldCached {
        /// Byte offset from the object base.
        offset: u32,
        /// Field type.
        ty: Ty,
        /// Volatile: write back dirty data after the write (JMM).
        volatile: bool,
    },
    /// SPE: load a static (the statics block is cached like an object).
    GetStaticCached {
        /// Offset within the statics block.
        offset: u32,
        /// Field type.
        ty: Ty,
        /// Volatile flag.
        volatile: bool,
    },
    /// SPE: store a static.
    PutStaticCached {
        /// Offset within the statics block.
        offset: u32,
        /// Field type.
        ty: Ty,
        /// Volatile flag.
        volatile: bool,
    },
    /// SPE: array element load (block transfer on miss).
    ArrLoadCached {
        /// Element type.
        elem: ElemTy,
    },
    /// SPE: array element store.
    ArrStoreCached {
        /// Element type.
        elem: ElemTy,
    },
    /// SPE: array length (reads the cached header).
    ArrLenCached,

    // ---- calls ----
    /// Direct call to a statically resolved method.
    InvokeStatic {
        /// Callee.
        method: MethodId,
    },
    /// Vtable dispatch.
    InvokeVirtual {
        /// Vtable slot of the resolved method.
        slot: u16,
        /// Statically named method (for diagnostics and arg counts).
        declared: MethodId,
    },
    /// Return (with or without a value).
    Return {
        /// Whether a value is carried back.
        has_value: bool,
    },

    // ---- synchronisation ----
    /// Acquire the popped object's monitor.
    MonitorEnter,
    /// Release the popped object's monitor.
    MonitorExit,
}

impl MachineOp {
    /// Whether this op is an SPE software-cache access.
    pub fn is_cached_access(&self) -> bool {
        matches!(
            self,
            MachineOp::GetFieldCached { .. }
                | MachineOp::PutFieldCached { .. }
                | MachineOp::GetStaticCached { .. }
                | MachineOp::PutStaticCached { .. }
                | MachineOp::ArrLoadCached { .. }
                | MachineOp::ArrStoreCached { .. }
                | MachineOp::ArrLenCached
        )
    }

    /// Whether this op is a PPE direct heap access.
    pub fn is_direct_access(&self) -> bool {
        matches!(
            self,
            MachineOp::GetFieldDirect { .. }
                | MachineOp::PutFieldDirect { .. }
                | MachineOp::GetStaticDirect { .. }
                | MachineOp::PutStaticDirect { .. }
                | MachineOp::ArrLoadDirect { .. }
                | MachineOp::ArrStoreDirect { .. }
                | MachineOp::ArrLenDirect
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wrapping_integer_arithmetic() {
        assert_eq!(
            ArithOp::IAdd
                .apply2(Value::I32(i32::MAX), Value::I32(1))
                .unwrap(),
            Value::I32(i32::MIN)
        );
        assert_eq!(
            ArithOp::IMul
                .apply2(Value::I32(1 << 20), Value::I32(1 << 20))
                .unwrap(),
            Value::I32((1i64 << 40) as i32)
        );
        assert_eq!(
            ArithOp::IDiv
                .apply2(Value::I32(i32::MIN), Value::I32(-1))
                .unwrap(),
            Value::I32(i32::MIN)
        );
    }

    #[test]
    fn division_by_zero_traps() {
        assert_eq!(
            ArithOp::IDiv.apply2(Value::I32(1), Value::I32(0)),
            Err(Trap::DivisionByZero)
        );
        assert_eq!(
            ArithOp::LRem.apply2(Value::I64(1), Value::I64(0)),
            Err(Trap::DivisionByZero)
        );
    }

    #[test]
    fn shifts_mask_their_counts() {
        assert_eq!(
            ArithOp::IShl.apply2(Value::I32(1), Value::I32(33)).unwrap(),
            Value::I32(2)
        );
        assert_eq!(
            ArithOp::LShl.apply2(Value::I64(1), Value::I32(65)).unwrap(),
            Value::I64(2)
        );
        assert_eq!(
            ArithOp::IUShr
                .apply2(Value::I32(-1), Value::I32(28))
                .unwrap(),
            Value::I32(15)
        );
    }

    #[test]
    fn saturating_float_conversions() {
        assert_eq!(ArithOp::F2I.apply1(Value::F32(f32::NAN)), Value::I32(0));
        assert_eq!(ArithOp::F2I.apply1(Value::F32(1e20)), Value::I32(i32::MAX));
        assert_eq!(ArithOp::D2I.apply1(Value::F64(-1e20)), Value::I32(i32::MIN));
        assert_eq!(ArithOp::D2L.apply1(Value::F64(1e30)), Value::I64(i64::MAX));
        assert_eq!(ArithOp::D2I.apply1(Value::F64(3.99)), Value::I32(3));
    }

    #[test]
    fn nan_biased_comparisons() {
        let nan = Value::F32(f32::NAN);
        let one = Value::F32(1.0);
        assert_eq!(ArithOp::FCmpL.apply2(nan, one).unwrap(), Value::I32(-1));
        assert_eq!(ArithOp::FCmpG.apply2(nan, one).unwrap(), Value::I32(1));
        assert_eq!(ArithOp::FCmpL.apply2(one, one).unwrap(), Value::I32(0));
        assert_eq!(
            ArithOp::DCmpL
                .apply2(Value::F64(2.0), Value::F64(1.0))
                .unwrap(),
            Value::I32(1)
        );
    }

    #[test]
    fn narrowing_conversions_sign_extend() {
        assert_eq!(ArithOp::I2B.apply1(Value::I32(0x181)), Value::I32(-127));
        assert_eq!(ArithOp::I2S.apply1(Value::I32(0x18001)), Value::I32(-32767));
        assert_eq!(
            ArithOp::L2I.apply1(Value::I64(0x1_0000_0002)),
            Value::I32(2)
        );
    }

    #[test]
    fn lcmp_three_way() {
        assert_eq!(
            ArithOp::LCmp.apply2(Value::I64(5), Value::I64(9)).unwrap(),
            Value::I32(-1)
        );
        assert_eq!(
            ArithOp::LCmp.apply2(Value::I64(9), Value::I64(9)).unwrap(),
            Value::I32(0)
        );
    }

    #[test]
    fn sqrt_intrinsics() {
        assert_eq!(ArithOp::FSqrt.apply1(Value::F32(9.0)), Value::F32(3.0));
        assert_eq!(ArithOp::DSqrt.apply1(Value::F64(2.25)), Value::F64(1.5));
    }

    #[test]
    fn arity_and_exec_ops_consistent() {
        assert_eq!(ArithOp::IAdd.arity(), 2);
        assert_eq!(ArithOp::FSqrt.arity(), 1);
        assert_eq!(ArithOp::I2D.arity(), 1);
        assert_eq!(ArithOp::FMul.exec_op(), ExecOp::FloatMul);
        assert_eq!(ArithOp::DDiv.exec_op(), ExecOp::DoubleDiv);
        assert_eq!(ArithOp::I2L.exec_op(), ExecOp::Convert);
        assert_eq!(ArithOp::LCmp.exec_op(), ExecOp::Compare);
    }

    #[test]
    fn access_flavour_predicates() {
        let cached = MachineOp::GetFieldCached {
            offset: 8,
            ty: Ty::Int,
            volatile: false,
        };
        let direct = MachineOp::GetFieldDirect {
            offset: 8,
            ty: Ty::Int,
            volatile: false,
        };
        assert!(cached.is_cached_access() && !cached.is_direct_access());
        assert!(direct.is_direct_access() && !direct.is_cached_access());
        assert!(!MachineOp::Pop.is_cached_access());
    }

    #[test]
    fn null_values_flow_through() {
        assert!(Value::Ref(hera_isa::ObjRef::NULL).as_ref().is_null());
    }
}
