//! The per-core compiled-method registry.
//!
//! A method is compiled for a core type the first time a thread running
//! on that core invokes it — and *only* then. Because most applications
//! partition cleanly between code that runs on the PPE and code that
//! runs on the SPEs, "the compilation overhead (both in time and memory
//! requirements) of running an application on the two core architectures
//! should be little more than running on a single architecture" (§3.1).
//! The registry's statistics let the E7 ablation quantify that claim.

use crate::compile::{compile_method, CompileError};
use crate::machine_op::MachineOp;
use hera_cell::CoreKind;
use hera_isa::{MethodId, Program};
use hera_mem::ProgramLayout;
use std::collections::HashMap;
use std::sync::Arc;

/// A method compiled for one core kind.
///
/// Carries the verifier's frame facts (`max_stack`, `max_locals`,
/// per-op [`RefMap`]s) so the runtime can carve fixed-size untagged
/// frames out of a thread's slot arena and still scan GC roots exactly.
/// The lowering is 1:1, so op indices coincide with bytecode pcs and
/// the maps transfer unchanged to compiled code on both core kinds.
///
/// [`RefMap`]: hera_isa::RefMap
#[derive(Clone, PartialEq, Debug)]
pub struct CompiledMethod {
    /// The source method.
    pub method: MethodId,
    /// Target core kind.
    pub core: CoreKind,
    /// The op stream.
    pub ops: Vec<MachineOp>,
    /// Estimated native code bytes (drives the SPE code cache).
    pub code_bytes: u32,
    /// Cycles the baseline compiler spent producing this code.
    pub compile_cycles: u64,
    /// Operand-stack capacity of every frame (verifier's `max_stack`).
    pub max_stack: u16,
    /// Local-variable slot count of every frame.
    pub max_locals: u16,
    /// GC reference map per op, indexed by pc (entry state of that op).
    pub ref_maps: Vec<hera_isa::RefMap>,
}

impl CompiledMethod {
    /// Total slots one frame of this method occupies in the arena.
    #[inline]
    pub fn frame_slots(&self) -> usize {
        self.max_locals as usize + self.max_stack as usize
    }
}

/// Aggregate registry statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RegistryStats {
    /// Methods compiled for the PPE.
    pub ppe_compilations: u64,
    /// Methods compiled for the SPE.
    pub spe_compilations: u64,
    /// Methods compiled for *both* core kinds (the dual-compilation
    /// overlap the paper argues stays small).
    pub dual_compiled: u64,
    /// Total compiler cycles spent, per core kind.
    pub ppe_compile_cycles: u64,
    /// Total compiler cycles spent on SPE code.
    pub spe_compile_cycles: u64,
    /// Total estimated code bytes, PPE.
    pub ppe_code_bytes: u64,
    /// Total estimated code bytes, SPE.
    pub spe_code_bytes: u64,
}

/// Cache of compiled methods keyed by `(method, core kind)`.
///
/// Cloning is cheap (the compiled bodies are shared through `Arc`), which
/// lets a speculative world carry a read-only view of the registry.
#[derive(Clone)]
pub struct MethodRegistry {
    compiled: HashMap<(MethodId, CoreKind), Arc<CompiledMethod>>,
    stats: RegistryStats,
}

impl MethodRegistry {
    /// An empty registry.
    pub fn new() -> MethodRegistry {
        MethodRegistry {
            compiled: HashMap::new(),
            stats: RegistryStats::default(),
        }
    }

    /// Fetch the compiled form of `method` for `core`, compiling it just
    /// in time if this is the first execution on that core kind.
    ///
    /// Returns the compiled method and the compile cycles incurred *by
    /// this call* (zero on a registry hit) so the caller can charge the
    /// JIT time to the executing core's clock.
    pub fn get_or_compile(
        &mut self,
        program: &Program,
        layout: &ProgramLayout,
        method: MethodId,
        core: CoreKind,
    ) -> Result<(Arc<CompiledMethod>, u64), CompileError> {
        if let Some(hit) = self.compiled.get(&(method, core)) {
            return Ok((Arc::clone(hit), 0));
        }
        let compiled = Arc::new(compile_method(program, layout, method, core)?);
        let cycles = compiled.compile_cycles;
        match core {
            CoreKind::Ppe => {
                self.stats.ppe_compilations += 1;
                self.stats.ppe_compile_cycles += cycles;
                self.stats.ppe_code_bytes += compiled.code_bytes as u64;
            }
            CoreKind::Spe => {
                self.stats.spe_compilations += 1;
                self.stats.spe_compile_cycles += cycles;
                self.stats.spe_code_bytes += compiled.code_bytes as u64;
            }
        }
        let other = match core {
            CoreKind::Ppe => CoreKind::Spe,
            CoreKind::Spe => CoreKind::Ppe,
        };
        if self.compiled.contains_key(&(method, other)) {
            self.stats.dual_compiled += 1;
        }
        self.compiled.insert((method, core), Arc::clone(&compiled));
        Ok((compiled, cycles))
    }

    /// Whether a method is already compiled for a core kind.
    pub fn is_compiled(&self, method: MethodId, core: CoreKind) -> bool {
        self.compiled.contains_key(&(method, core))
    }

    /// Registry statistics so far.
    pub fn stats(&self) -> RegistryStats {
        self.stats
    }

    /// Every `(method, core)` key with compiled code, sorted by method id
    /// then core kind (PPE first). Snapshot support: a restored run
    /// recompiles exactly this set eagerly, then overwrites the stats with
    /// [`MethodRegistry::set_stats`] so compile accounting is not repaid.
    pub fn compiled_keys(&self) -> Vec<(MethodId, CoreKind)> {
        let mut keys: Vec<(MethodId, CoreKind)> = self.compiled.keys().copied().collect();
        keys.sort_unstable_by_key(|&(m, core)| (m.0, core != CoreKind::Ppe));
        keys
    }

    /// Overwrite the statistics (snapshot restore only).
    pub fn set_stats(&mut self, stats: RegistryStats) {
        self.stats = stats;
    }

    /// Number of distinct (method, core) entries.
    pub fn len(&self) -> usize {
        self.compiled.len()
    }

    /// Whether no method has been compiled yet.
    pub fn is_empty(&self) -> bool {
        self.compiled.is_empty()
    }
}

impl Default for MethodRegistry {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hera_isa::{Instr, MethodBody, ProgramBuilder, Ty};

    fn fixture() -> (Program, ProgramLayout, MethodId, MethodId) {
        let mut b = ProgramBuilder::new();
        let c = b.add_class("C", None);
        let m1 = b.add_static_method(
            c,
            "a",
            vec![],
            Some(Ty::Int),
            0,
            MethodBody::Bytecode(vec![Instr::ConstI32(1), Instr::ReturnValue]),
        );
        let m2 = b.add_static_method(
            c,
            "b",
            vec![],
            Some(Ty::Int),
            0,
            MethodBody::Bytecode(vec![Instr::ConstI32(2), Instr::ReturnValue]),
        );
        let p = b.finish().unwrap();
        let l = ProgramLayout::compute(&p);
        (p, l, m1, m2)
    }

    #[test]
    fn first_compile_charges_cycles_then_hits_are_free() {
        let (p, l, m1, _) = fixture();
        let mut reg = MethodRegistry::new();
        let (_, cycles1) = reg.get_or_compile(&p, &l, m1, CoreKind::Spe).unwrap();
        assert!(cycles1 > 0);
        let (_, cycles2) = reg.get_or_compile(&p, &l, m1, CoreKind::Spe).unwrap();
        assert_eq!(cycles2, 0);
        assert_eq!(reg.stats().spe_compilations, 1);
    }

    #[test]
    fn per_core_entries_are_independent() {
        let (p, l, m1, _) = fixture();
        let mut reg = MethodRegistry::new();
        reg.get_or_compile(&p, &l, m1, CoreKind::Ppe).unwrap();
        assert!(reg.is_compiled(m1, CoreKind::Ppe));
        assert!(!reg.is_compiled(m1, CoreKind::Spe));
        reg.get_or_compile(&p, &l, m1, CoreKind::Spe).unwrap();
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.stats().dual_compiled, 1);
    }

    #[test]
    fn partitioned_execution_avoids_dual_compilation() {
        let (p, l, m1, m2) = fixture();
        let mut reg = MethodRegistry::new();
        reg.get_or_compile(&p, &l, m1, CoreKind::Ppe).unwrap();
        reg.get_or_compile(&p, &l, m2, CoreKind::Spe).unwrap();
        let s = reg.stats();
        assert_eq!(s.dual_compiled, 0);
        assert_eq!(s.ppe_compilations, 1);
        assert_eq!(s.spe_compilations, 1);
    }

    #[test]
    fn code_bytes_accumulate() {
        let (p, l, m1, m2) = fixture();
        let mut reg = MethodRegistry::new();
        reg.get_or_compile(&p, &l, m1, CoreKind::Spe).unwrap();
        reg.get_or_compile(&p, &l, m2, CoreKind::Spe).unwrap();
        assert!(reg.stats().spe_code_bytes > 0);
        assert_eq!(reg.stats().ppe_code_bytes, 0);
    }
}
