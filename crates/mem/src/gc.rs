//! Stop-the-world mark-and-sweep collection (the collector core).
//!
//! The paper configures Hera-JVM with "a mark-and-sweep, stop-the-world
//! garbage collector, which only runs on the PPE core". This module is
//! the policy-free core: given the set of roots (thread stacks are
//! scanned by the runtime; statics are scanned here), it marks, sweeps,
//! and rebuilds the free list. The *driver* — stopping threads at
//! safepoints, flushing SPE software caches first, charging PPE cycles —
//! lives in `hera-core::gc_driver`.

use crate::heap::{Heap, HeapKind};
use crate::layout::{ProgramLayout, HEADER_BYTES};
use hera_isa::{ElemTy, ObjRef};
use hera_trace::{GcPhase, TraceEvent, TraceSink};
use std::collections::BTreeSet;

/// Result of one collection.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GcOutcome {
    /// Objects that survived.
    pub live_objects: u64,
    /// Bytes occupied by survivors (headers included).
    pub live_bytes: u64,
    /// Objects reclaimed.
    pub freed_objects: u64,
    /// Bytes reclaimed.
    pub freed_bytes: u64,
    /// Number of root references supplied (statics refs included).
    pub roots: u64,
}

/// The mark-and-sweep collector. Stateless between collections; kept as
/// a struct so the mark stack's allocation is reused across runs.
#[derive(Default)]
pub struct Collector {
    mark_stack: Vec<ObjRef>,
}

impl Collector {
    /// Create a collector.
    pub fn new() -> Collector {
        Collector::default()
    }

    /// Collect the heap. `roots` are the references found in thread
    /// stacks (tagged host-side values, so the scan is exact); statics
    /// are traced internally from the statics block.
    ///
    /// Dirty SPE software caches must have been written back before
    /// calling: a reference held only in a cached copy is invisible to
    /// the trace (see `hera-core::gc_driver`, which enforces this).
    pub fn collect(
        &mut self,
        heap: &mut Heap,
        layout: &ProgramLayout,
        roots: &[ObjRef],
    ) -> GcOutcome {
        let mut outcome = GcOutcome::default();

        // ---- mark ----
        self.mark_stack.clear();
        for &r in roots {
            self.push_root(heap, r, &mut outcome);
        }
        // Statics block references are roots too.
        for &off in &layout.statics.ref_offsets {
            let r = ObjRef(heap.read_u32(Heap::STATICS_BASE + off));
            self.push_root(heap, r, &mut outcome);
        }
        while let Some(r) = self.mark_stack.pop() {
            self.trace(heap, layout, r);
        }

        // ---- sweep ----
        let mut survivors = BTreeSet::new();
        let all: Vec<u32> = heap.object_set().iter().copied().collect();
        for addr in all {
            let r = ObjRef(addr);
            let hdr = heap.header(r);
            if hdr.marked {
                heap.set_marked(r, false);
                survivors.insert(addr);
                outcome.live_objects += 1;
                outcome.live_bytes += hdr.size as u64;
            } else {
                outcome.freed_objects += 1;
                outcome.freed_bytes += hdr.size as u64;
            }
        }
        heap.rebuild_free_list(survivors);
        outcome
    }

    /// [`Collector::collect`], recording the two collector phases into a
    /// trace sink (lane `lane`, virtual time `at` — the driver charges the
    /// collection's cycles, so both phase summaries carry its timestamp).
    pub fn collect_traced(
        &mut self,
        heap: &mut Heap,
        layout: &ProgramLayout,
        roots: &[ObjRef],
        sink: &mut TraceSink,
        lane: usize,
        at: u64,
    ) -> GcOutcome {
        let outcome = self.collect(heap, layout, roots);
        if sink.is_enabled() {
            sink.emit(
                lane,
                at,
                TraceEvent::GcPhaseEnd {
                    phase: GcPhase::Mark,
                    items: outcome.live_objects,
                    bytes: outcome.live_bytes,
                },
            );
            sink.emit(
                lane,
                at,
                TraceEvent::GcPhaseEnd {
                    phase: GcPhase::Sweep,
                    items: outcome.freed_objects,
                    bytes: outcome.freed_bytes,
                },
            );
            sink.metrics.add("gc.collections", 1);
            sink.metrics.add("gc.freed_objects", outcome.freed_objects);
            sink.metrics.add("gc.freed_bytes", outcome.freed_bytes);
            sink.metrics.record("gc.live_bytes", outcome.live_bytes);
        }
        outcome
    }

    fn push_root(&mut self, heap: &mut Heap, r: ObjRef, outcome: &mut GcOutcome) {
        outcome.roots += 1;
        if !r.is_null() && !heap.set_marked(r, true) {
            self.mark_stack.push(r);
        }
    }

    fn trace(&mut self, heap: &mut Heap, layout: &ProgramLayout, r: ObjRef) {
        match heap.header(r).kind {
            HeapKind::Object(class) => {
                // Walk this class's reference-bearing offsets.
                let offsets = layout.classes[class.0 as usize].ref_offsets.clone();
                for off in offsets {
                    let child = ObjRef(heap.read_u32(r.0 + off));
                    if !child.is_null() && !heap.set_marked(child, true) {
                        self.mark_stack.push(child);
                    }
                }
            }
            HeapKind::Array(ElemTy::Ref, len) => {
                for i in 0..len {
                    let child = ObjRef(heap.read_u32(r.0 + HEADER_BYTES + i * 4));
                    if !child.is_null() && !heap.set_marked(child, true) {
                        self.mark_stack.push(child);
                    }
                }
            }
            HeapKind::Array(_, _) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heap::HeapConfig;
    use hera_isa::{ClassId, ProgramBuilder, Ty, Value};

    struct Fixture {
        heap: Heap,
        layout: ProgramLayout,
        node: ClassId,
        next: hera_isa::FieldId,
        root_static: hera_isa::FieldId,
    }

    fn fixture() -> Fixture {
        let mut b = ProgramBuilder::new();
        let node = b.add_class("Node", None);
        let next = b.add_field(node, "next", Ty::Ref(node));
        b.add_field(node, "payload", Ty::Int);
        let root_static = b.add_static_field(node, "head", Ty::Ref(node));
        let p = b.finish().unwrap();
        let layout = ProgramLayout::compute(&p);
        let heap = Heap::new(HeapConfig { size_bytes: 8192 }, layout.statics.size);
        Fixture {
            heap,
            layout,
            node,
            next,
            root_static,
        }
    }

    #[test]
    fn unreachable_objects_are_swept() {
        let mut f = fixture();
        let a = f.heap.alloc_object(&f.layout, f.node).unwrap();
        let _garbage = f.heap.alloc_object(&f.layout, f.node).unwrap();
        let mut gc = Collector::new();
        let out = gc.collect(&mut f.heap, &f.layout, &[a]);
        assert_eq!(out.live_objects, 1);
        assert_eq!(out.freed_objects, 1);
        assert_eq!(f.heap.object_count(), 1);
    }

    #[test]
    fn reference_chains_are_traced() {
        let mut f = fixture();
        let a = f.heap.alloc_object(&f.layout, f.node).unwrap();
        let b2 = f.heap.alloc_object(&f.layout, f.node).unwrap();
        let c = f.heap.alloc_object(&f.layout, f.node).unwrap();
        f.heap.put_field(&f.layout, a, f.next, Value::Ref(b2));
        f.heap.put_field(&f.layout, b2, f.next, Value::Ref(c));
        let mut gc = Collector::new();
        let out = gc.collect(&mut f.heap, &f.layout, &[a]);
        assert_eq!(out.live_objects, 3);
        assert_eq!(out.freed_objects, 0);
        // Field contents survive the sweep untouched.
        assert_eq!(f.heap.get_field(&f.layout, a, f.next), Value::Ref(b2));
    }

    #[test]
    fn statics_are_roots() {
        let mut f = fixture();
        let a = f.heap.alloc_object(&f.layout, f.node).unwrap();
        f.heap.put_static(&f.layout, f.root_static, Value::Ref(a));
        let mut gc = Collector::new();
        let out = gc.collect(&mut f.heap, &f.layout, &[]);
        assert_eq!(out.live_objects, 1);
    }

    #[test]
    fn cycles_do_not_loop_and_are_collected_when_unreachable() {
        let mut f = fixture();
        let a = f.heap.alloc_object(&f.layout, f.node).unwrap();
        let b2 = f.heap.alloc_object(&f.layout, f.node).unwrap();
        f.heap.put_field(&f.layout, a, f.next, Value::Ref(b2));
        f.heap.put_field(&f.layout, b2, f.next, Value::Ref(a));
        let mut gc = Collector::new();
        let out = gc.collect(&mut f.heap, &f.layout, &[a]);
        assert_eq!(out.live_objects, 2);
        // Drop the root: the cycle must be reclaimed.
        let out = gc.collect(&mut f.heap, &f.layout, &[]);
        assert_eq!(out.live_objects, 0);
        assert_eq!(out.freed_objects, 2);
    }

    #[test]
    fn ref_arrays_are_traced() {
        let mut f = fixture();
        let arr = f.heap.alloc_array(ElemTy::Ref, 4).unwrap();
        let a = f.heap.alloc_object(&f.layout, f.node).unwrap();
        f.heap.array_store(arr, 2, Value::Ref(a)).unwrap();
        let mut gc = Collector::new();
        let out = gc.collect(&mut f.heap, &f.layout, &[arr]);
        assert_eq!(out.live_objects, 2);
    }

    #[test]
    fn primitive_arrays_are_leaves() {
        let mut f = fixture();
        let arr = f.heap.alloc_array(ElemTy::Int, 64).unwrap();
        // Write values that would look like addresses if misinterpreted.
        let victim = f.heap.alloc_object(&f.layout, f.node).unwrap();
        f.heap
            .array_store(arr, 0, Value::I32(victim.0 as i32))
            .unwrap();
        let mut gc = Collector::new();
        let out = gc.collect(&mut f.heap, &f.layout, &[arr]);
        // The int that happens to equal victim's address must not keep it alive.
        assert_eq!(out.live_objects, 1);
        assert_eq!(out.freed_objects, 1);
    }

    #[test]
    fn freed_space_is_reusable_and_coalesced() {
        let mut f = fixture();
        let keep = f.heap.alloc_object(&f.layout, f.node).unwrap();
        for _ in 0..100 {
            f.heap.alloc_object(&f.layout, f.node).unwrap();
        }
        let before_free = f.heap.free_bytes();
        let mut gc = Collector::new();
        gc.collect(&mut f.heap, &f.layout, &[keep]);
        assert!(f.heap.free_bytes() > before_free);
        // Large allocation must fit in the coalesced space.
        assert!(f.heap.alloc_array(ElemTy::Byte, 1500).is_some());
    }

    #[test]
    fn collect_with_duplicate_roots_is_idempotent() {
        let mut f = fixture();
        let a = f.heap.alloc_object(&f.layout, f.node).unwrap();
        let mut gc = Collector::new();
        let out = gc.collect(&mut f.heap, &f.layout, &[a, a, a]);
        assert_eq!(out.live_objects, 1);
        // Mark bits were reset: a second collection sees the same world.
        let out2 = gc.collect(&mut f.heap, &f.layout, &[a]);
        assert_eq!(out2.live_objects, 1);
    }
}
