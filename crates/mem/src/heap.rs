//! The guest heap: raw bytes, object/array headers, a first-fit
//! free-list allocator, and typed field/element access.
//!
//! ## Header encoding (8 bytes)
//!
//! ```text
//! word0 (u32 @ +0): bit31 = is_array, bit30 = GC mark,
//!                   bits16..24 = element-type code (arrays),
//!                   bits0..16  = class id (objects)
//! word1 (u32 @ +4): objects: total byte size (incl. header)
//!                   arrays:  element count
//! ```
//!
//! Addresses `0..8` are reserved so `ObjRef(0)` is null; the statics
//! block sits at [`Heap::STATICS_BASE`]; objects follow it.

use crate::layout::{ProgramLayout, HEADER_BYTES};
use hera_isa::{ClassId, ElemTy, ObjRef, Slot, Trap, Ty, Value};
use std::collections::{BTreeSet, HashMap};
use std::sync::{Arc, Mutex};

/// Heap configuration.
#[derive(Clone, Copy, Debug)]
pub struct HeapConfig {
    /// Total heap size in bytes (default 32 MiB — ample for the three
    /// benchmarks while keeping simulation memory modest).
    pub size_bytes: u32,
}

impl Default for HeapConfig {
    fn default() -> Self {
        HeapConfig {
            size_bytes: 32 << 20,
        }
    }
}

/// Errors from raw heap operations (simulator-internal misuse; guest
/// program faults surface as [`Trap`]s instead).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum HeapError {
    /// Address/length outside the heap.
    BadAddress(u32),
    /// A direct byte borrow was requested while a speculative overlay is
    /// active; speculative callers must use `copy_to`/`copy_from`.
    SpecOverlayActive(u32),
}

impl std::fmt::Display for HeapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HeapError::BadAddress(a) => write!(f, "bad heap address {a:#x}"),
            HeapError::SpecOverlayActive(a) => {
                write!(f, "byte borrow at {a:#x} under speculative overlay")
            }
        }
    }
}

impl std::error::Error for HeapError {}

/// What a header designates.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum HeapKind {
    /// An instance of the class.
    Object(ClassId),
    /// An array with the element type and length.
    Array(ElemTy, u32),
}

/// Decoded object/array header.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Header {
    /// Object or array, with identity.
    pub kind: HeapKind,
    /// Total byte size including the header (8-byte aligned).
    pub size: u32,
    /// GC mark bit.
    pub marked: bool,
}

const ARRAY_BIT: u32 = 1 << 31;
const MARK_BIT: u32 = 1 << 30;

fn elem_code(e: ElemTy) -> u32 {
    match e {
        ElemTy::Byte => 0,
        ElemTy::Short => 1,
        ElemTy::Int => 2,
        ElemTy::Long => 3,
        ElemTy::Float => 4,
        ElemTy::Double => 5,
        ElemTy::Ref => 6,
    }
}

fn code_elem(c: u32) -> ElemTy {
    match c {
        0 => ElemTy::Byte,
        1 => ElemTy::Short,
        2 => ElemTy::Int,
        3 => ElemTy::Long,
        4 => ElemTy::Float,
        5 => ElemTy::Double,
        6 => ElemTy::Ref,
        other => panic!("corrupt header: element code {other}"),
    }
}

fn align8(v: u32) -> u32 {
    (v + 7) & !7
}

/// Byte size of an array with `len` elements of `elem`, header included.
pub fn array_byte_size(elem: ElemTy, len: u32) -> u32 {
    align8(HEADER_BYTES + len * elem.size())
}

/// Typed raw-byte codecs shared by the heap and the SPE local store
/// (the software cache operates on byte copies, so both sides must agree
/// on encodings).
pub mod codec {
    use super::*;

    /// Read an untagged slot from a byte buffer at `off`. `ty` selects
    /// the width and the sign/zero extension; no tag is materialised.
    #[inline]
    pub fn read_slot(buf: &[u8], off: usize, ty: Ty) -> Slot {
        match ty {
            Ty::Byte => Slot::from_i32(buf[off] as i8 as i32),
            Ty::Short => Slot::from_i32(i16::from_le_bytes([buf[off], buf[off + 1]]) as i32),
            Ty::Int => Slot::from_i32(i32::from_le_bytes(word4(buf, off))),
            Ty::Float => Slot::from_f32(f32::from_le_bytes(word4(buf, off))),
            Ty::Long => Slot::from_i64(i64::from_le_bytes(word8(buf, off))),
            Ty::Double => Slot::from_f64(f64::from_le_bytes(word8(buf, off))),
            Ty::Ref(_) | Ty::Array(_) => {
                Slot::from_ref(ObjRef(u32::from_le_bytes(word4(buf, off))))
            }
        }
    }

    /// Write an untagged slot into a byte buffer at `off`, truncating to
    /// `ty`'s field width.
    #[inline]
    pub fn write_slot(buf: &mut [u8], off: usize, ty: Ty, s: Slot) {
        match ty {
            Ty::Byte => buf[off] = s.i32() as u8,
            Ty::Short => buf[off..off + 2].copy_from_slice(&(s.i32() as i16).to_le_bytes()),
            Ty::Int => buf[off..off + 4].copy_from_slice(&s.i32().to_le_bytes()),
            Ty::Float => buf[off..off + 4].copy_from_slice(&s.f32().to_le_bytes()),
            Ty::Long => buf[off..off + 8].copy_from_slice(&s.i64().to_le_bytes()),
            Ty::Double => buf[off..off + 8].copy_from_slice(&s.f64().to_le_bytes()),
            Ty::Ref(_) | Ty::Array(_) => {
                buf[off..off + 4].copy_from_slice(&s.obj().0.to_le_bytes())
            }
        }
    }

    /// Read a typed value from a byte buffer at `off`.
    pub fn read_value(buf: &[u8], off: usize, ty: Ty) -> Value {
        read_slot(buf, off, ty).to_value(ty.kind())
    }

    /// Write a typed value into a byte buffer at `off`.
    ///
    /// # Panics
    ///
    /// Panics on a kind mismatch between `ty` and `v` (verified bytecode
    /// cannot produce one).
    pub fn write_value(buf: &mut [u8], off: usize, ty: Ty, v: Value) {
        match ty {
            Ty::Byte => buf[off] = v.as_i32() as u8,
            Ty::Short => buf[off..off + 2].copy_from_slice(&(v.as_i32() as i16).to_le_bytes()),
            Ty::Int => buf[off..off + 4].copy_from_slice(&v.as_i32().to_le_bytes()),
            Ty::Float => buf[off..off + 4].copy_from_slice(&v.as_f32().to_le_bytes()),
            Ty::Long => buf[off..off + 8].copy_from_slice(&v.as_i64().to_le_bytes()),
            Ty::Double => buf[off..off + 8].copy_from_slice(&v.as_f64().to_le_bytes()),
            Ty::Ref(_) | Ty::Array(_) => {
                buf[off..off + 4].copy_from_slice(&v.as_ref().0.to_le_bytes())
            }
        }
    }

    /// Element-typed read (arrays).
    pub fn read_elem(buf: &[u8], off: usize, e: ElemTy) -> Value {
        read_value(buf, off, elem_as_ty(e))
    }

    /// Element-typed write (arrays).
    pub fn write_elem(buf: &mut [u8], off: usize, e: ElemTy, v: Value) {
        write_value(buf, off, elem_as_ty(e), v)
    }

    /// Element-typed untagged read (arrays).
    #[inline]
    pub fn read_elem_slot(buf: &[u8], off: usize, e: ElemTy) -> Slot {
        read_slot(buf, off, elem_as_ty(e))
    }

    /// Element-typed untagged write (arrays).
    #[inline]
    pub fn write_elem_slot(buf: &mut [u8], off: usize, e: ElemTy, s: Slot) {
        write_slot(buf, off, elem_as_ty(e), s)
    }

    /// Field width in bytes of a typed access (the number of heap bytes
    /// `read_value`/`write_value` touch for `ty`).
    #[inline]
    pub fn ty_width(ty: Ty) -> usize {
        match ty {
            Ty::Byte => 1,
            Ty::Short => 2,
            Ty::Int | Ty::Float | Ty::Ref(_) | Ty::Array(_) => 4,
            Ty::Long | Ty::Double => 8,
        }
    }

    /// The `Ty` equivalent of an array element type (same codec widths).
    #[inline]
    pub fn elem_as_ty(e: ElemTy) -> Ty {
        match e {
            ElemTy::Byte => Ty::Byte,
            ElemTy::Short => Ty::Short,
            ElemTy::Int => Ty::Int,
            ElemTy::Long => Ty::Long,
            ElemTy::Float => Ty::Float,
            ElemTy::Double => Ty::Double,
            ElemTy::Ref => Ty::Ref(ClassId(0)),
        }
    }

    fn word4(buf: &[u8], off: usize) -> [u8; 4] {
        [buf[off], buf[off + 1], buf[off + 2], buf[off + 3]]
    }

    fn word8(buf: &[u8], off: usize) -> [u8; 8] {
        [
            buf[off],
            buf[off + 1],
            buf[off + 2],
            buf[off + 3],
            buf[off + 4],
            buf[off + 5],
            buf[off + 6],
            buf[off + 7],
        ]
    }
}

/// Allocation statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct AllocStats {
    /// Number of successful allocations.
    pub allocations: u64,
    /// Bytes handed out (including headers).
    pub bytes_allocated: u64,
}

/// Copy-on-write block size of the speculative overlay. Must divide the
/// (4 KiB-aligned) heap size.
const SPEC_BLOCK: u32 = 64;

/// Speculative copy-on-write overlay (the parallel host engine's fork).
///
/// A forked heap shares the backing store via `Arc` and routes every
/// write into private 64-byte block copies, logging precise `(addr, len)`
/// read and write ranges. At commit time the engine checks the read log
/// against earlier commits' write ranges and, when disjoint, applies the
/// materialised write bytes to the real heap.
///
/// The read log sits behind a `Mutex` (not `RefCell`) because read paths
/// take `&self` and the world must stay `Sync` so workers can fork from
/// a shared reference; the lock is always uncontended (each forked heap
/// is owned by exactly one worker).
#[derive(Debug, Default)]
pub struct SpecOverlay {
    blocks: HashMap<u32, Box<[u8; SPEC_BLOCK as usize]>>,
    reads: Mutex<Vec<(u32, u32)>>,
    writes: Vec<(u32, u32)>,
}

/// One materialised speculative write: `(address, bytes)`.
pub type SpecWrite = (u32, Vec<u8>);

/// Coalesce `(addr, len)` ranges: sort by address and merge overlapping
/// or adjacent spans.
fn merge_ranges(mut v: Vec<(u32, u32)>) -> Vec<(u32, u32)> {
    v.sort_unstable();
    let mut out: Vec<(u32, u32)> = Vec::with_capacity(v.len().min(64));
    for (addr, len) in v {
        match out.last_mut() {
            Some((a, l)) if addr <= *a + *l => {
                let end = (addr as u64 + len as u64).max(*a as u64 + *l as u64);
                *l = (end - *a as u64) as u32;
            }
            _ => out.push((addr, len)),
        }
    }
    out
}

/// Fill `dst` from `addr`, preferring overlay blocks over the base.
fn compose_read(spec: &SpecOverlay, base: &[u8], addr: u32, dst: &mut [u8]) {
    let mut off = 0usize;
    while off < dst.len() {
        let a = addr + off as u32;
        let block = a / SPEC_BLOCK;
        let in_block = (a % SPEC_BLOCK) as usize;
        let take = (SPEC_BLOCK as usize - in_block).min(dst.len() - off);
        match spec.blocks.get(&block) {
            Some(b) => dst[off..off + take].copy_from_slice(&b[in_block..in_block + take]),
            None => {
                let s = a as usize;
                dst[off..off + take].copy_from_slice(&base[s..s + take]);
            }
        }
        off += take;
    }
}

/// Write `src` at `addr` into overlay blocks, copying each touched block
/// in from the base on first touch.
fn overlay_write(spec: &mut SpecOverlay, base: &[u8], addr: u32, src: &[u8]) {
    let mut off = 0usize;
    while off < src.len() {
        let a = addr + off as u32;
        let block = a / SPEC_BLOCK;
        let in_block = (a % SPEC_BLOCK) as usize;
        let take = (SPEC_BLOCK as usize - in_block).min(src.len() - off);
        let b = spec.blocks.entry(block).or_insert_with(|| {
            let mut buf = Box::new([0u8; SPEC_BLOCK as usize]);
            let s = (block * SPEC_BLOCK) as usize;
            let e = (s + SPEC_BLOCK as usize).min(base.len());
            buf[..e - s].copy_from_slice(&base[s..e]);
            buf
        });
        b[in_block..in_block + take].copy_from_slice(&src[off..off + take]);
        off += take;
    }
}

/// The guest heap.
pub struct Heap {
    /// Backing store. `Arc` so a speculative fork is O(1): forks share
    /// the bytes and divert writes into their overlay; the real heap
    /// only ever mutates via `Arc::make_mut` once all forks are dropped,
    /// so it never deep-copies.
    data: Arc<Vec<u8>>,
    /// Start of the allocatable object region.
    objects_base: u32,
    /// One past the last allocatable byte.
    limit: u32,
    /// Free spans `(addr, size)`, sorted by address.
    free: Vec<(u32, u32)>,
    /// Addresses of all live (allocated) objects.
    objects: BTreeSet<u32>,
    /// Statics block size.
    statics_size: u32,
    /// Allocation statistics.
    pub stats: AllocStats,
    /// `Some` only on a speculative fork, never on the real heap.
    spec: Option<Box<SpecOverlay>>,
}

impl Heap {
    /// Address of the statics block (fixed, just past the null page).
    pub const STATICS_BASE: u32 = 8;

    /// Create a heap sized per `config` with room for the program's
    /// statics block.
    pub fn new(config: HeapConfig, statics_size: u32) -> Heap {
        let size = config.size_bytes.max(4096);
        let objects_base = align8(Self::STATICS_BASE + statics_size);
        Heap {
            data: Arc::new(vec![0; size as usize]),
            objects_base,
            limit: size,
            free: vec![(objects_base, size - objects_base)],
            objects: BTreeSet::new(),
            statics_size,
            stats: AllocStats::default(),
            spec: None,
        }
    }

    /// Mutable view of the backing store. On the real heap this is an
    /// `Arc::make_mut`, which is free (refcount 1) except while forks are
    /// alive — and the engine never mutates the real heap while they are.
    #[inline]
    fn data_mut(&mut self) -> &mut Vec<u8> {
        debug_assert!(self.spec.is_none(), "direct mutation under overlay");
        Arc::make_mut(&mut self.data)
    }

    /// Size of the statics block.
    pub fn statics_size(&self) -> u32 {
        self.statics_size
    }

    /// Start of the object region (after statics).
    pub fn objects_base(&self) -> u32 {
        self.objects_base
    }

    /// Total free bytes currently on the free list.
    pub fn free_bytes(&self) -> u64 {
        self.free.iter().map(|&(_, s)| s as u64).sum()
    }

    /// Number of live allocated objects.
    pub fn object_count(&self) -> usize {
        self.objects.len()
    }

    /// Iterate over the addresses of all allocated objects.
    pub fn objects(&self) -> impl Iterator<Item = ObjRef> + '_ {
        self.objects.iter().map(|&a| ObjRef(a))
    }

    // ---- snapshot support ----

    /// The entire backing store (snapshot encode). Only meaningful on
    /// the real heap — a fork's overlay is not reflected here.
    pub fn raw(&self) -> &[u8] {
        debug_assert!(self.spec.is_none(), "raw() on speculative fork");
        &self.data
    }

    /// One past the last allocatable byte.
    pub fn limit(&self) -> u32 {
        self.limit
    }

    /// The free list, `(addr, size)` sorted by address (snapshot encode).
    pub fn free_spans(&self) -> &[(u32, u32)] {
        &self.free
    }

    /// Rebuild a heap from snapshot state. The backing store, free list
    /// and object set are taken verbatim; basic shape invariants are
    /// validated so a corrupt snapshot cannot produce an out-of-bounds
    /// heap.
    #[allow(clippy::too_many_arguments)]
    pub fn from_raw_parts(
        data: Vec<u8>,
        objects_base: u32,
        limit: u32,
        free: Vec<(u32, u32)>,
        objects: BTreeSet<u32>,
        statics_size: u32,
        stats: AllocStats,
    ) -> Result<Heap, &'static str> {
        if limit as usize != data.len() {
            return Err("heap limit does not match data size");
        }
        if objects_base != align8(Self::STATICS_BASE + statics_size) || objects_base > limit {
            return Err("heap objects_base inconsistent with statics block");
        }
        let mut prev_end = objects_base;
        for &(addr, size) in &free {
            if addr < prev_end || size == 0 || addr as u64 + size as u64 > limit as u64 {
                return Err("heap free list out of bounds or unsorted");
            }
            prev_end = addr + size;
        }
        if objects
            .iter()
            .any(|&a| a < objects_base || a.saturating_add(HEADER_BYTES) > limit)
        {
            return Err("heap object address out of bounds");
        }
        Ok(Heap {
            data: Arc::new(data),
            objects_base,
            limit,
            free,
            objects,
            statics_size,
            stats,
            spec: None,
        })
    }

    // ---- speculative overlay (parallel host engine) ----

    /// Fork for speculative execution: shares the backing store, diverts
    /// all writes into a fresh copy-on-write overlay, and logs every read
    /// and write range for commit-time conflict detection.
    pub fn fork_for_spec(&self) -> Heap {
        debug_assert!(self.spec.is_none(), "fork of a fork");
        Heap {
            data: Arc::clone(&self.data),
            objects_base: self.objects_base,
            limit: self.limit,
            free: self.free.clone(),
            objects: self.objects.clone(),
            statics_size: self.statics_size,
            stats: self.stats,
            spec: Some(Box::default()),
        }
    }

    /// Whether this heap is a speculative fork.
    pub fn is_spec(&self) -> bool {
        self.spec.is_some()
    }

    /// Harvest the overlay's logs: `(merged read ranges, materialised
    /// write ranges)`. The write bytes are composed from the overlay so
    /// the caller owns them outright — the fork can then be dropped,
    /// returning the backing `Arc` to refcount 1 before commit.
    ///
    /// # Panics
    ///
    /// Panics when called on a non-speculative heap.
    pub fn spec_take_log(&mut self) -> (Vec<(u32, u32)>, Vec<SpecWrite>) {
        let mut spec = self.spec.take().expect("spec_take_log on real heap");
        let reads = merge_ranges(std::mem::take(spec.reads.get_mut().unwrap()));
        let writes = merge_ranges(spec.writes.clone())
            .into_iter()
            .map(|(addr, len)| {
                let mut buf = vec![0u8; len as usize];
                compose_read(&spec, &self.data, addr, &mut buf);
                (addr, buf)
            })
            .collect();
        (reads, writes)
    }

    /// Copy `dst.len()` bytes starting at `addr` out of the heap,
    /// composing overlay and backing store and logging the read range
    /// when speculative.
    pub fn copy_to(&self, addr: u32, dst: &mut [u8]) -> Result<(), HeapError> {
        let (a, l) = (addr as usize, dst.len());
        if a.checked_add(l).is_none_or(|end| end > self.data.len()) {
            return Err(HeapError::BadAddress(addr));
        }
        if let Some(spec) = self.spec.as_deref() {
            spec.reads.lock().unwrap().push((addr, l as u32));
            compose_read(spec, &self.data, addr, dst);
        } else {
            dst.copy_from_slice(&self.data[a..a + l]);
        }
        Ok(())
    }

    /// Copy `src` into the heap at `addr`, routing through the overlay
    /// and logging the write range when speculative.
    pub fn copy_from(&mut self, addr: u32, src: &[u8]) -> Result<(), HeapError> {
        let (a, l) = (addr as usize, src.len());
        if a.checked_add(l).is_none_or(|end| end > self.data.len()) {
            return Err(HeapError::BadAddress(addr));
        }
        if self.spec.is_some() {
            let data = Arc::clone(&self.data);
            let spec = self.spec.as_deref_mut().unwrap();
            spec.writes.push((addr, l as u32));
            overlay_write(spec, &data, addr, src);
        } else {
            self.data_mut()[a..a + l].copy_from_slice(src);
        }
        Ok(())
    }

    /// Owned copy of `len` bytes starting at `addr` (overlay-aware).
    pub fn read_bytes(&self, addr: u32, len: u32) -> Result<Vec<u8>, HeapError> {
        let mut buf = vec![0u8; len as usize];
        self.copy_to(addr, &mut buf)?;
        Ok(buf)
    }

    // ---- raw access ----

    /// Borrow `len` bytes starting at `addr` (for DMA source copies).
    /// Unavailable on speculative forks — use [`Heap::copy_to`], which
    /// composes the overlay and logs the read.
    pub fn bytes(&self, addr: u32, len: u32) -> Result<&[u8], HeapError> {
        if self.spec.is_some() {
            return Err(HeapError::SpecOverlayActive(addr));
        }
        let (a, l) = (addr as usize, len as usize);
        self.data.get(a..a + l).ok_or(HeapError::BadAddress(addr))
    }

    /// Mutably borrow `len` bytes starting at `addr` (for DMA write-back).
    /// Unavailable on speculative forks — use [`Heap::copy_from`].
    pub fn bytes_mut(&mut self, addr: u32, len: u32) -> Result<&mut [u8], HeapError> {
        if self.spec.is_some() {
            return Err(HeapError::SpecOverlayActive(addr));
        }
        let (a, l) = (addr as usize, len as usize);
        self.data_mut()
            .get_mut(a..a + l)
            .ok_or(HeapError::BadAddress(addr))
    }

    /// Read a little-endian u32 (used for headers and ref slots).
    #[inline]
    pub fn read_u32(&self, addr: u32) -> u32 {
        if self.spec.is_some() {
            let mut b = [0u8; 4];
            self.copy_to(addr, &mut b).expect("read_u32 out of bounds");
            return u32::from_le_bytes(b);
        }
        let a = addr as usize;
        u32::from_le_bytes([
            self.data[a],
            self.data[a + 1],
            self.data[a + 2],
            self.data[a + 3],
        ])
    }

    /// Write a little-endian u32.
    #[inline]
    pub fn write_u32(&mut self, addr: u32, v: u32) {
        if self.spec.is_some() {
            self.copy_from(addr, &v.to_le_bytes())
                .expect("write_u32 out of bounds");
            return;
        }
        let a = addr as usize;
        self.data_mut()[a..a + 4].copy_from_slice(&v.to_le_bytes());
    }

    /// Typed read at an absolute address.
    #[inline]
    pub fn read_typed(&self, addr: u32, ty: Ty) -> Value {
        if self.spec.is_some() {
            let mut buf = [0u8; 8];
            let w = codec::ty_width(ty);
            self.copy_to(addr, &mut buf[..w])
                .expect("typed read out of bounds");
            return codec::read_value(&buf, 0, ty);
        }
        codec::read_value(&self.data, addr as usize, ty)
    }

    /// Typed write at an absolute address.
    #[inline]
    pub fn write_typed(&mut self, addr: u32, ty: Ty, v: Value) {
        if self.spec.is_some() {
            let mut buf = [0u8; 8];
            let w = codec::ty_width(ty);
            codec::write_value(&mut buf, 0, ty, v);
            self.copy_from(addr, &buf[..w])
                .expect("typed write out of bounds");
            return;
        }
        codec::write_value(self.data_mut(), addr as usize, ty, v)
    }

    /// Untagged read at an absolute address; `ty` selects width only.
    #[inline]
    pub fn read_typed_slot(&self, addr: u32, ty: Ty) -> Slot {
        if self.spec.is_some() {
            let mut buf = [0u8; 8];
            let w = codec::ty_width(ty);
            self.copy_to(addr, &mut buf[..w])
                .expect("typed read out of bounds");
            return codec::read_slot(&buf, 0, ty);
        }
        codec::read_slot(&self.data, addr as usize, ty)
    }

    /// Untagged write at an absolute address; `ty` selects width only.
    #[inline]
    pub fn write_typed_slot(&mut self, addr: u32, ty: Ty, s: Slot) {
        if self.spec.is_some() {
            let mut buf = [0u8; 8];
            let w = codec::ty_width(ty);
            codec::write_slot(&mut buf, 0, ty, s);
            self.copy_from(addr, &buf[..w])
                .expect("typed write out of bounds");
            return;
        }
        codec::write_slot(self.data_mut(), addr as usize, ty, s)
    }

    // ---- headers ----

    /// Decode the header of the object at `r`.
    ///
    /// # Panics
    ///
    /// Panics on a null or unallocated reference — callers (the
    /// interpreter) null-check first, so this indicates a VM bug.
    pub fn header(&self, r: ObjRef) -> Header {
        debug_assert!(!r.is_null(), "header of null");
        let w0 = self.read_u32(r.0);
        let w1 = self.read_u32(r.0 + 4);
        if w0 & ARRAY_BIT != 0 {
            let e = code_elem((w0 >> 16) & 0xff);
            Header {
                kind: HeapKind::Array(e, w1),
                size: array_byte_size(e, w1),
                marked: w0 & MARK_BIT != 0,
            }
        } else {
            Header {
                kind: HeapKind::Object(ClassId((w0 & 0xffff) as u16)),
                size: w1,
                marked: w0 & MARK_BIT != 0,
            }
        }
    }

    /// Set or clear the GC mark bit. Returns the previous value.
    pub fn set_marked(&mut self, r: ObjRef, marked: bool) -> bool {
        let w0 = self.read_u32(r.0);
        let was = w0 & MARK_BIT != 0;
        let new = if marked {
            w0 | MARK_BIT
        } else {
            w0 & !MARK_BIT
        };
        self.write_u32(r.0, new);
        was
    }

    // ---- allocation ----

    /// Allocate an instance of `class`. Returns `None` when no free span
    /// fits (caller should collect and retry, then trap with OOM).
    pub fn alloc_object(&mut self, layout: &ProgramLayout, class: ClassId) -> Option<ObjRef> {
        let size = layout.object_size(class);
        let addr = self.carve(size)?;
        self.zero(addr, size);
        self.write_u32(addr, class.0 as u32);
        self.write_u32(addr + 4, size);
        self.objects.insert(addr);
        self.stats.allocations += 1;
        self.stats.bytes_allocated += size as u64;
        Some(ObjRef(addr))
    }

    /// Allocate an array. `len` must be non-negative (the interpreter
    /// traps on negative sizes before calling).
    pub fn alloc_array(&mut self, elem: ElemTy, len: u32) -> Option<ObjRef> {
        let size = array_byte_size(elem, len);
        let addr = self.carve(size)?;
        self.zero(addr, size);
        self.write_u32(addr, ARRAY_BIT | (elem_code(elem) << 16));
        self.write_u32(addr + 4, len);
        self.objects.insert(addr);
        self.stats.allocations += 1;
        self.stats.bytes_allocated += size as u64;
        Some(ObjRef(addr))
    }

    fn carve(&mut self, size: u32) -> Option<u32> {
        let size = align8(size);
        let idx = self.free.iter().position(|&(_, s)| s >= size)?;
        let (addr, span) = self.free[idx];
        if span == size {
            self.free.remove(idx);
        } else {
            self.free[idx] = (addr + size, span - size);
        }
        Some(addr)
    }

    fn zero(&mut self, addr: u32, size: u32) {
        let a = addr as usize;
        self.data_mut()[a..a + size as usize].fill(0);
    }

    /// Rebuild the free list from the set of surviving objects (called by
    /// the collector after unmarked objects have been dropped from the
    /// registry). Gaps between surviving objects coalesce naturally.
    pub(crate) fn rebuild_free_list(&mut self, survivors: BTreeSet<u32>) {
        let mut free = Vec::new();
        let mut cursor = self.objects_base;
        for &addr in &survivors {
            if addr > cursor {
                free.push((cursor, addr - cursor));
            }
            let hdr = self.header(ObjRef(addr));
            cursor = addr + align8(hdr.size);
        }
        if self.limit > cursor {
            free.push((cursor, self.limit - cursor));
        }
        self.free = free;
        self.objects = survivors;
    }

    /// The current set of allocated object addresses (for the collector).
    pub(crate) fn object_set(&self) -> &BTreeSet<u32> {
        &self.objects
    }

    // ---- typed field / element access ----

    /// Read an instance field.
    #[inline]
    pub fn get_field(&self, layout: &ProgramLayout, r: ObjRef, field: hera_isa::FieldId) -> Value {
        self.read_typed(r.0 + layout.offset_of(field), layout.ty_of(field))
    }

    /// Write an instance field.
    #[inline]
    pub fn put_field(
        &mut self,
        layout: &ProgramLayout,
        r: ObjRef,
        field: hera_isa::FieldId,
        v: Value,
    ) {
        self.write_typed(r.0 + layout.offset_of(field), layout.ty_of(field), v)
    }

    /// Read a static field from the statics block.
    #[inline]
    pub fn get_static(&self, layout: &ProgramLayout, field: hera_isa::FieldId) -> Value {
        self.read_typed(
            Self::STATICS_BASE + layout.offset_of(field),
            layout.ty_of(field),
        )
    }

    /// Write a static field into the statics block.
    #[inline]
    pub fn put_static(&mut self, layout: &ProgramLayout, field: hera_isa::FieldId, v: Value) {
        self.write_typed(
            Self::STATICS_BASE + layout.offset_of(field),
            layout.ty_of(field),
            v,
        )
    }

    /// Bounds-checked address of array element `idx`; the array's header
    /// is consulted for the length and element size.
    pub fn elem_addr(&self, r: ObjRef, idx: i32) -> Result<(u32, ElemTy), Trap> {
        let hdr = self.header(r);
        let (elem, len) = match hdr.kind {
            HeapKind::Array(e, l) => (e, l),
            HeapKind::Object(_) => panic!("elem_addr on non-array (verifier bug)"),
        };
        if idx < 0 || idx as u32 >= len {
            return Err(Trap::ArrayIndexOutOfBounds { index: idx, len });
        }
        Ok((r.0 + HEADER_BYTES + idx as u32 * elem.size(), elem))
    }

    /// Bounds-checked array element load.
    pub fn array_load(&self, r: ObjRef, idx: i32) -> Result<Value, Trap> {
        let (addr, elem) = self.elem_addr(r, idx)?;
        Ok(self.read_typed(addr, codec::elem_as_ty(elem)))
    }

    /// Bounds-checked array element store.
    pub fn array_store(&mut self, r: ObjRef, idx: i32, v: Value) -> Result<(), Trap> {
        let (addr, elem) = self.elem_addr(r, idx)?;
        self.write_typed(addr, codec::elem_as_ty(elem), v);
        Ok(())
    }

    /// Bounds-checked untagged array element load.
    #[inline]
    pub fn array_load_slot(&self, r: ObjRef, idx: i32) -> Result<Slot, Trap> {
        let (addr, elem) = self.elem_addr(r, idx)?;
        Ok(self.read_typed_slot(addr, codec::elem_as_ty(elem)))
    }

    /// Bounds-checked untagged array element store.
    #[inline]
    pub fn array_store_slot(&mut self, r: ObjRef, idx: i32, s: Slot) -> Result<(), Trap> {
        let (addr, elem) = self.elem_addr(r, idx)?;
        self.write_typed_slot(addr, codec::elem_as_ty(elem), s);
        Ok(())
    }

    /// Array length from the header.
    pub fn array_length(&self, r: ObjRef) -> u32 {
        match self.header(r).kind {
            HeapKind::Array(_, len) => len,
            HeapKind::Object(_) => panic!("array_length on non-array (verifier bug)"),
        }
    }

    /// Array length, `None` when `r` is not an array (natives receive
    /// arbitrary verified refs, so this path must not panic).
    pub fn try_array_length(&self, r: ObjRef) -> Option<u32> {
        match self.header(r).kind {
            HeapKind::Array(_, len) => Some(len),
            HeapKind::Object(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hera_isa::ProgramBuilder;

    fn small_heap() -> (Heap, ProgramLayout, ClassId, hera_isa::FieldId) {
        let mut b = ProgramBuilder::new();
        let c = b.add_class("C", None);
        let f = b.add_field(c, "x", Ty::Int);
        let p = b.finish().unwrap();
        let layout = ProgramLayout::compute(&p);
        let heap = Heap::new(HeapConfig { size_bytes: 4096 }, layout.statics.size);
        (heap, layout, c, f)
    }

    #[test]
    fn alloc_and_field_roundtrip() {
        let (mut heap, layout, c, f) = small_heap();
        let r = heap.alloc_object(&layout, c).unwrap();
        assert!(!r.is_null());
        assert_eq!(heap.get_field(&layout, r, f), Value::I32(0));
        heap.put_field(&layout, r, f, Value::I32(-99));
        assert_eq!(heap.get_field(&layout, r, f), Value::I32(-99));
        let hdr = heap.header(r);
        assert_eq!(hdr.kind, HeapKind::Object(c));
        assert_eq!(hdr.size, 16);
        assert!(!hdr.marked);
    }

    #[test]
    fn array_roundtrip_and_bounds() {
        let (mut heap, _, _, _) = small_heap();
        let r = heap.alloc_array(ElemTy::Short, 5).unwrap();
        assert_eq!(heap.array_length(r), 5);
        heap.array_store(r, 4, Value::I32(-2)).unwrap();
        assert_eq!(heap.array_load(r, 4).unwrap(), Value::I32(-2));
        assert_eq!(
            heap.array_load(r, 5),
            Err(Trap::ArrayIndexOutOfBounds { index: 5, len: 5 })
        );
        assert_eq!(
            heap.array_store(r, -1, Value::I32(0)),
            Err(Trap::ArrayIndexOutOfBounds { index: -1, len: 5 })
        );
    }

    #[test]
    fn array_header_decodes() {
        let (mut heap, _, _, _) = small_heap();
        let r = heap.alloc_array(ElemTy::Double, 3).unwrap();
        let hdr = heap.header(r);
        assert_eq!(hdr.kind, HeapKind::Array(ElemTy::Double, 3));
        assert_eq!(hdr.size, 32);
    }

    #[test]
    fn allocations_are_disjoint_and_zeroed() {
        let (mut heap, layout, c, f) = small_heap();
        let a = heap.alloc_object(&layout, c).unwrap();
        heap.put_field(&layout, a, f, Value::I32(7));
        let b2 = heap.alloc_object(&layout, c).unwrap();
        assert_ne!(a, b2);
        assert_eq!(heap.get_field(&layout, b2, f), Value::I32(0));
        assert_eq!(heap.get_field(&layout, a, f), Value::I32(7));
        assert_eq!(heap.object_count(), 2);
    }

    #[test]
    fn exhaustion_returns_none() {
        let (mut heap, _, _, _) = small_heap();
        let mut n = 0;
        while heap.alloc_array(ElemTy::Byte, 100).is_some() {
            n += 1;
            assert!(n < 1000, "heap never filled");
        }
        assert!(n > 0);
    }

    #[test]
    fn statics_roundtrip() {
        let mut b = ProgramBuilder::new();
        let c = b.add_class("C", None);
        let s = b.add_static_field(c, "counter", Ty::Long);
        let p = b.finish().unwrap();
        let layout = ProgramLayout::compute(&p);
        let mut heap = Heap::new(HeapConfig { size_bytes: 4096 }, layout.statics.size);
        assert_eq!(heap.get_static(&layout, s), Value::I64(0));
        heap.put_static(&layout, s, Value::I64(1 << 40));
        assert_eq!(heap.get_static(&layout, s), Value::I64(1 << 40));
    }

    #[test]
    fn mark_bit_roundtrip() {
        let (mut heap, layout, c, _) = small_heap();
        let r = heap.alloc_object(&layout, c).unwrap();
        assert!(!heap.set_marked(r, true));
        assert!(heap.header(r).marked);
        assert!(heap.set_marked(r, false));
        assert!(!heap.header(r).marked);
        // marking must not disturb the class id
        assert_eq!(heap.header(r).kind, HeapKind::Object(c));
    }

    #[test]
    fn codec_roundtrips_all_types() {
        let mut buf = vec![0u8; 16];
        let cases: Vec<(Ty, Value)> = vec![
            (Ty::Byte, Value::I32(-5)),
            (Ty::Short, Value::I32(-300)),
            (Ty::Int, Value::I32(i32::MIN)),
            (Ty::Long, Value::I64(i64::MAX)),
            (Ty::Float, Value::F32(3.5)),
            (Ty::Double, Value::F64(-2.25)),
            (Ty::Ref(ClassId(0)), Value::Ref(ObjRef(0xdead))),
        ];
        for (ty, v) in cases {
            codec::write_value(&mut buf, 4, ty, v);
            assert_eq!(codec::read_value(&buf, 4, ty), v, "{ty:?}");
        }
    }

    #[test]
    fn bytes_out_of_range_is_error() {
        let (heap, _, _, _) = small_heap();
        assert!(heap.bytes(4090, 100).is_err());
        assert!(heap.bytes(0, 8).is_ok());
    }
}
