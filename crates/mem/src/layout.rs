//! Object and statics layout: compute byte offsets for every field.
//!
//! Instance fields are laid out in inheritance order (superclass fields
//! first), each aligned to its own size, after the 8-byte object header.
//! Static fields are packed into a single *statics block* the same way.
//! Reference-bearing offsets are recorded per class (and for the statics
//! block) so the collector can trace exactly.

use hera_isa::{ClassId, FieldId, Program, Ty};

/// Byte size of the object/array header (see `heap` module docs).
pub const HEADER_BYTES: u32 = 8;

/// Computed layout for one class.
#[derive(Clone, Debug)]
pub struct ClassLayout {
    /// Total instance size in bytes, including the header, rounded up to
    /// 8-byte alignment.
    pub size: u32,
    /// Byte offsets (from the object base) of reference-typed fields,
    /// for GC tracing and software-cache write-back of references.
    pub ref_offsets: Vec<u32>,
}

/// Computed layout for the statics block.
#[derive(Clone, Debug, Default)]
pub struct StaticsLayout {
    /// Total size of the statics block in bytes (8-byte aligned, and at
    /// least 8 so the block exists even for programs without statics).
    pub size: u32,
    /// Offsets of reference-typed statics within the block.
    pub ref_offsets: Vec<u32>,
}

/// Per-program layout tables, indexed by `ClassId` / `FieldId`.
#[derive(Clone, Debug)]
pub struct ProgramLayout {
    /// Layout of each class, indexed by `ClassId`.
    pub classes: Vec<ClassLayout>,
    /// Byte offset of every field: for instance fields, from the object
    /// base; for static fields, from the statics block base.
    pub field_offset: Vec<u32>,
    /// The static type of every field (cached from the program for fast
    /// typed access).
    pub field_ty: Vec<Ty>,
    /// Statics block layout.
    pub statics: StaticsLayout,
}

fn align_to(v: u32, a: u32) -> u32 {
    debug_assert!(a.is_power_of_two());
    (v + a - 1) & !(a - 1)
}

impl ProgramLayout {
    /// Compute layouts for every class and the statics block.
    pub fn compute(program: &Program) -> ProgramLayout {
        let mut field_offset = vec![0u32; program.fields.len()];
        let field_ty: Vec<Ty> = program.fields.iter().map(|f| f.ty).collect();

        // Instance layout per class, inheritance order.
        let mut classes = Vec::with_capacity(program.classes.len());
        for cid in 0..program.classes.len() {
            let cid = ClassId(cid as u16);
            let mut cursor = HEADER_BYTES;
            let mut ref_offsets = Vec::new();
            for fid in program.all_instance_fields(cid) {
                let ty = program.field(fid).ty;
                let sz = ty.field_size();
                cursor = align_to(cursor, sz.min(8));
                field_offset[fid.0 as usize] = cursor;
                if ty.is_ref() {
                    ref_offsets.push(cursor);
                }
                cursor += sz;
            }
            classes.push(ClassLayout {
                size: align_to(cursor, 8),
                ref_offsets,
            });
        }

        // Statics block layout.
        let mut cursor = 0u32;
        let mut ref_offsets = Vec::new();
        for (idx, f) in program.fields.iter().enumerate() {
            if !f.is_static {
                continue;
            }
            let sz = f.ty.field_size();
            cursor = align_to(cursor, sz.min(8));
            field_offset[idx] = cursor;
            if f.ty.is_ref() {
                ref_offsets.push(cursor);
            }
            cursor += sz;
        }
        let statics = StaticsLayout {
            size: align_to(cursor.max(8), 8),
            ref_offsets,
        };

        ProgramLayout {
            classes,
            field_offset,
            field_ty,
            statics,
        }
    }

    /// Instance size (bytes, with header) of a class.
    #[inline]
    pub fn object_size(&self, class: ClassId) -> u32 {
        self.classes[class.0 as usize].size
    }

    /// Byte offset of a field (object-relative or statics-relative).
    #[inline]
    pub fn offset_of(&self, field: FieldId) -> u32 {
        self.field_offset[field.0 as usize]
    }

    /// Declared type of a field.
    #[inline]
    pub fn ty_of(&self, field: FieldId) -> Ty {
        self.field_ty[field.0 as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hera_isa::{ElemTy, ProgramBuilder};

    #[test]
    fn empty_class_is_header_only() {
        let mut b = ProgramBuilder::new();
        let c = b.add_class("E", None);
        let p = b.finish().unwrap();
        let l = ProgramLayout::compute(&p);
        assert_eq!(l.object_size(c), 8);
    }

    #[test]
    fn fields_are_aligned() {
        let mut b = ProgramBuilder::new();
        let c = b.add_class("C", None);
        let fb = b.add_field(c, "b", Ty::Byte); // offset 8
        let fd = b.add_field(c, "d", Ty::Double); // aligns to 16
        let fs = b.add_field(c, "s", Ty::Short); // offset 24
        let fi = b.add_field(c, "i", Ty::Int); // aligns to 28
        let p = b.finish().unwrap();
        let l = ProgramLayout::compute(&p);
        assert_eq!(l.offset_of(fb), 8);
        assert_eq!(l.offset_of(fd), 16);
        assert_eq!(l.offset_of(fs), 24);
        assert_eq!(l.offset_of(fi), 28);
        assert_eq!(l.object_size(c), 32);
    }

    #[test]
    fn inherited_fields_precede_own_fields() {
        let mut b = ProgramBuilder::new();
        let a = b.add_class("A", None);
        let fa = b.add_field(a, "a", Ty::Int);
        let c = b.add_class("B", Some(a));
        let fbf = b.add_field(c, "b", Ty::Int);
        let p = b.finish().unwrap();
        let l = ProgramLayout::compute(&p);
        assert_eq!(l.offset_of(fa), 8);
        assert_eq!(l.offset_of(fbf), 12);
        assert_eq!(l.object_size(a), 16);
        assert_eq!(l.object_size(c), 16);
    }

    #[test]
    fn ref_offsets_recorded() {
        let mut b = ProgramBuilder::new();
        let a = b.add_class("A", None);
        b.add_field(a, "i", Ty::Int);
        b.add_field(a, "r", Ty::Ref(a));
        b.add_field(a, "arr", Ty::Array(ElemTy::Int));
        let p = b.finish().unwrap();
        let l = ProgramLayout::compute(&p);
        assert_eq!(l.classes[0].ref_offsets, vec![12, 16]);
    }

    #[test]
    fn statics_block_layout() {
        let mut b = ProgramBuilder::new();
        let a = b.add_class("A", None);
        let s1 = b.add_static_field(a, "x", Ty::Long);
        let s2 = b.add_static_field(a, "r", Ty::Ref(a));
        b.add_field(a, "notstatic", Ty::Int);
        let p = b.finish().unwrap();
        let l = ProgramLayout::compute(&p);
        assert_eq!(l.offset_of(s1), 0);
        assert_eq!(l.offset_of(s2), 8);
        assert_eq!(l.statics.size, 16);
        assert_eq!(l.statics.ref_offsets, vec![8]);
    }

    #[test]
    fn statics_block_never_empty() {
        let p = ProgramBuilder::new().finish().unwrap();
        let l = ProgramLayout::compute(&p);
        assert_eq!(l.statics.size, 8);
    }
}
