//! # hera-mem — the main-memory substrate
//!
//! Models the Cell's main memory as a flat byte array with an explicit
//! object model, a free-list allocator, and a stop-the-world
//! mark-and-sweep collector core (the paper configures Hera-JVM with a
//! mark-and-sweep, stop-the-world collector that runs only on the PPE).
//!
//! Objects are laid out with an 8-byte header followed by fields at
//! computed offsets; arrays carry their element type and length in the
//! header. Static fields live in a *statics block* at a fixed heap
//! address, mirroring JikesRVM's JTOC: on the SPE, static accesses go
//! through the software data cache like any other main-memory access.
//!
//! Keeping the heap as raw bytes is load-bearing for the reproduction:
//! the SPE software cache (see `hera-softcache`) copies byte ranges over
//! simulated DMA, so stale reads, write-back granularity and transfer
//! sizes are all real data movement rather than abstractions.

pub mod gc;
pub mod heap;
pub mod layout;

pub use gc::{Collector, GcOutcome};
pub use heap::{Header, Heap, HeapConfig, HeapError, HeapKind};
pub use layout::{ClassLayout, ProgramLayout, StaticsLayout};
