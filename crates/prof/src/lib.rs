//! # hera-prof — per-method virtual-cycle profiler
//!
//! The simulator's cycle accounting ([`CycleBreakdown`] in `hera-cell`)
//! answers *what kind* of cycles a run spent; the trace lanes (`hera-trace`)
//! answer *when*. This crate answers *which method is paying*: it maintains
//! a shadow call stack per guest thread and attributes every charged
//! virtual cycle to the innermost active frame, split by
//! [`CostClass`] (compute, DMA stall, cache fills, JMM barriers, monitor
//! contention, migration, GC pauses, fault retries, syscall proxying).
//!
//! ## Model
//!
//! The profiler is a *consumer* of charges, never a source: the machine
//! mirrors every cycle it charges into per-core pending vectors
//! (`CellMachine::prof_take`), and the runtime drains those vectors at
//! every frame boundary — method entry, method return, thread completion,
//! and quantum begin/end — billing them to the frame that was innermost
//! while they accrued. Because the simulation is sequential, everything
//! charged between two boundaries belongs to the thread the scheduler was
//! running, on whichever cores it touched (a syscall proxied to the PPE
//! bills the causing SPE method in the PPE lane).
//!
//! The shadow stack mirrors exactly the engine's `MethodInvoke` /
//! `MethodReturn` event points, so it survives migrations (which move a
//! frame between cores without invoking anything) and the fail-over drain
//! (which rewrites migration markers but never touches Java frames).
//!
//! Costs aggregate into a call trie whose nodes are call paths and whose
//! values are one [`CostVec`] per core *kind* (PPE / SPE) — the paper's
//! axis of interest. Charges that accrue outside any quantum (thread
//! switches, fail-over salvage) land on the synthetic root, labelled
//! `(runtime)`.
//!
//! ## Invariant
//!
//! No cycle is invented or lost: for each core kind, the sum over all trie
//! nodes and cost classes equals the machine's `CycleBreakdown` total for
//! that kind, cycle for cycle. Integration tests pin this on every
//! workload/topology pair. Profiling never charges virtual cycles, so an
//! enabled profiler cannot perturb simulated time.
//!
//! [`CycleBreakdown`]: https://docs.rs/hera-cell

use hera_trace::{CostClass, CostVec};
use std::collections::BTreeMap;

mod report;

pub use report::{DiffRow, MethodRow};

/// Synthetic method id for the trie root: cycles charged outside any guest
/// frame (scheduler, fail-over salvage, post-run draining).
pub const RUNTIME_METHOD: u32 = u32::MAX;

/// Core kinds a cost can accrue on. Lane 0 of the machine (the PPE) maps
/// to [`KindLane::Ppe`]; every other lane is an SPE.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(usize)]
pub enum KindLane {
    Ppe = 0,
    Spe = 1,
}

impl KindLane {
    pub const COUNT: usize = 2;
    pub const ALL: [KindLane; 2] = [KindLane::Ppe, KindLane::Spe];

    /// Map a machine lane index (0 = PPE, 1+n = SPE n) to its kind.
    pub fn from_machine_lane(lane: usize) -> KindLane {
        if lane == 0 {
            KindLane::Ppe
        } else {
            KindLane::Spe
        }
    }

    pub fn label(self) -> &'static str {
        match self {
            KindLane::Ppe => "ppe",
            KindLane::Spe => "spe",
        }
    }
}

/// One call-trie node: a unique root-to-here call path.
#[derive(Clone, Debug, PartialEq, Eq)]
struct Node {
    method: u32,
    parent: u32,
    /// method id -> child node index; BTreeMap keeps traversal (and every
    /// report) deterministic.
    children: BTreeMap<u32, u32>,
    /// Self cost of this path, per core kind.
    cost: [CostVec; KindLane::COUNT],
}

impl Node {
    fn new(method: u32, parent: u32) -> Node {
        Node {
            method,
            parent,
            children: BTreeMap::new(),
            cost: [CostVec::ZERO; KindLane::COUNT],
        }
    }
}

/// The live profiler: a call trie plus one shadow-stack cursor per thread.
///
/// The cursor is keyed by thread id, not core, so it survives migrations
/// and fail-over unchanged.
#[derive(Clone, Debug, Default)]
pub struct Profiler {
    nodes: Vec<Node>,
    /// thread id -> current trie node (innermost shadow frame).
    current: BTreeMap<u32, u32>,
}

impl Profiler {
    pub fn new() -> Profiler {
        Profiler {
            nodes: vec![Node::new(RUNTIME_METHOD, 0)],
            current: BTreeMap::new(),
        }
    }

    fn cursor(&mut self, tid: u32) -> u32 {
        *self.current.entry(tid).or_insert(0)
    }

    /// Mirror a method invocation: push `method` onto `tid`'s shadow stack.
    pub fn enter(&mut self, tid: u32, method: u32) {
        let cur = self.cursor(tid);
        let idx = match self.nodes[cur as usize].children.get(&method) {
            Some(&i) => i,
            None => {
                let i = self.nodes.len() as u32;
                self.nodes.push(Node::new(method, cur));
                self.nodes[cur as usize].children.insert(method, i);
                i
            }
        };
        self.current.insert(tid, idx);
    }

    /// Mirror a method return: pop `tid`'s shadow stack. Popping at the
    /// root is a no-op (the engine never emits an unmatched return; this
    /// keeps the profiler total-preserving even if it did).
    pub fn leave(&mut self, tid: u32) {
        let cur = self.cursor(tid);
        if cur != 0 {
            let parent = self.nodes[cur as usize].parent;
            self.current.insert(tid, parent);
        }
    }

    /// Unwind `tid`'s shadow stack to the root (thread completion, traps,
    /// stack overflow — any path that discards guest frames wholesale).
    pub fn reset(&mut self, tid: u32) {
        self.current.insert(tid, 0);
    }

    /// Depth of `tid`'s shadow stack (0 = at root). Test/debug aid.
    pub fn depth(&self, tid: u32) -> usize {
        let mut cur = self.current.get(&tid).copied().unwrap_or(0);
        let mut d = 0;
        while cur != 0 {
            cur = self.nodes[cur as usize].parent;
            d += 1;
        }
        d
    }

    /// Bill drained cycles to `tid`'s innermost shadow frame, in the lane
    /// of the core kind they accrued on.
    pub fn bill(&mut self, tid: u32, kind: KindLane, v: &CostVec) {
        let cur = self.cursor(tid);
        self.nodes[cur as usize].cost[kind as usize].merge(v);
    }

    /// Bill drained cycles to the synthetic `(runtime)` root.
    pub fn bill_runtime(&mut self, kind: KindLane, v: &CostVec) {
        self.nodes[0].cost[kind as usize].merge(v);
    }

    /// Freeze into an immutable [`Profile`] for reporting.
    pub fn finish(self) -> Profile {
        Profile { nodes: self.nodes }
    }

    /// Raw trie state for snapshots: every node in index order as
    /// `(method, parent, per-kind raw cost lanes)`, plus the per-thread
    /// cursors sorted by thread id. Children maps are omitted — they are
    /// re-derived from the parent links on restore.
    #[allow(clippy::type_complexity)]
    pub fn export_state(
        &self,
    ) -> (
        Vec<(u32, u32, [[u64; CostClass::COUNT]; KindLane::COUNT])>,
        Vec<(u32, u32)>,
    ) {
        let nodes = self
            .nodes
            .iter()
            .map(|n| (n.method, n.parent, [n.cost[0].0, n.cost[1].0]))
            .collect();
        let current = self.current.iter().map(|(&t, &c)| (t, c)).collect();
        (nodes, current)
    }

    /// Rebuild a profiler from [`Profiler::export_state`] output. Fails
    /// on a missing root or dangling links, so a corrupt snapshot cannot
    /// index out of bounds.
    #[allow(clippy::type_complexity)]
    pub fn from_state(
        nodes: Vec<(u32, u32, [[u64; CostClass::COUNT]; KindLane::COUNT])>,
        current: Vec<(u32, u32)>,
    ) -> Result<Profiler, &'static str> {
        if nodes.is_empty() || nodes[0].0 != RUNTIME_METHOD || nodes[0].1 != 0 {
            return Err("profiler trie missing runtime root");
        }
        let mut built: Vec<Node> = Vec::with_capacity(nodes.len());
        for (i, &(method, parent, cost)) in nodes.iter().enumerate() {
            if i > 0 && parent as usize >= i {
                return Err("profiler trie parent link out of order");
            }
            let mut node = Node::new(method, parent);
            node.cost = [CostVec(cost[0]), CostVec(cost[1])];
            built.push(node);
            if i > 0 {
                built[parent as usize].children.insert(method, i as u32);
            }
        }
        for &(_, cur) in &current {
            if cur as usize >= built.len() {
                return Err("profiler cursor out of range");
            }
        }
        Ok(Profiler {
            nodes: built,
            current: current.into_iter().collect(),
        })
    }
}

/// A frozen profile: the call trie with per-kind, per-class cycle costs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Profile {
    nodes: Vec<Node>,
}

impl Profile {
    /// Total attributed cycles per core kind, summed over every call path
    /// and cost class. Reconciles exactly with the machine's
    /// `CycleBreakdown` totals.
    pub fn totals(&self) -> [CostVec; KindLane::COUNT] {
        let mut t = [CostVec::ZERO; KindLane::COUNT];
        for n in &self.nodes {
            for (acc, cost) in t.iter_mut().zip(&n.cost) {
                acc.merge(cost);
            }
        }
        t
    }

    /// Total attributed cycles for one core kind.
    pub fn total(&self, kind: KindLane) -> CostVec {
        let mut t = CostVec::ZERO;
        for n in &self.nodes {
            t.merge(&n.cost[kind as usize]);
        }
        t
    }

    /// The root-to-node call path as method ids (root excluded for the
    /// root itself).
    fn path(&self, mut idx: usize) -> Vec<u32> {
        let mut p = Vec::new();
        loop {
            p.push(self.nodes[idx].method);
            if idx == 0 {
                break;
            }
            idx = self.nodes[idx].parent as usize;
        }
        p.reverse();
        p
    }

    /// Collapsed-stack flamegraph lines, one lane per core kind:
    /// `kind;(runtime);caller;callee cycles`, lexicographically sorted.
    /// Loadable by standard flamegraph tooling.
    pub fn collapsed(&self, name_of: &dyn Fn(u32) -> String) -> String {
        let mut lines: Vec<String> = Vec::new();
        for (i, n) in self.nodes.iter().enumerate() {
            for kind in KindLane::ALL {
                let cycles = n.cost[kind as usize].total();
                if cycles == 0 {
                    continue;
                }
                let stack: Vec<String> = self.path(i).into_iter().map(name_of).collect();
                lines.push(format!("{};{} {}", kind.label(), stack.join(";"), cycles));
            }
        }
        lines.sort();
        let mut out = lines.join("\n");
        if !out.is_empty() {
            out.push('\n');
        }
        out
    }
}

/// Resolve a method id through a name table, mapping [`RUNTIME_METHOD`] to
/// `(runtime)` and out-of-range ids to `m<id>`.
pub fn method_name(names: &[String], id: u32) -> String {
    if id == RUNTIME_METHOD {
        "(runtime)".to_string()
    } else {
        names
            .get(id as usize)
            .cloned()
            .unwrap_or_else(|| format!("m{id}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hera_trace::CostClass;

    fn v(class: CostClass, cycles: u64) -> CostVec {
        let mut c = CostVec::ZERO;
        c.add(class, cycles);
        c
    }

    #[test]
    fn enter_leave_tracks_depth_and_paths_dedup() {
        let mut p = Profiler::new();
        p.enter(0, 1);
        p.enter(0, 2);
        assert_eq!(p.depth(0), 2);
        p.leave(0);
        p.enter(0, 2); // same path again -> same node
        p.bill(0, KindLane::Spe, &v(CostClass::Compute, 10));
        p.leave(0);
        p.leave(0);
        assert_eq!(p.depth(0), 0);
        p.leave(0); // pop at root is a no-op
        assert_eq!(p.depth(0), 0);
        let prof = p.finish();
        // Root + method 1 + method 2: one node per unique path.
        assert_eq!(prof.nodes.len(), 3);
        assert_eq!(prof.total(KindLane::Spe).total(), 10);
    }

    #[test]
    fn threads_have_independent_shadow_stacks() {
        let mut p = Profiler::new();
        p.enter(0, 1);
        p.enter(1, 5);
        p.bill(0, KindLane::Ppe, &v(CostClass::Compute, 3));
        p.bill(1, KindLane::Spe, &v(CostClass::GcPause, 7));
        p.reset(1);
        assert_eq!(p.depth(0), 1);
        assert_eq!(p.depth(1), 0);
        let prof = p.finish();
        assert_eq!(prof.total(KindLane::Ppe).get(CostClass::Compute), 3);
        assert_eq!(prof.total(KindLane::Spe).get(CostClass::GcPause), 7);
    }

    #[test]
    fn collapsed_output_is_sorted_and_complete() {
        let mut p = Profiler::new();
        p.bill_runtime(KindLane::Ppe, &v(CostClass::Compute, 1));
        p.enter(0, 0);
        p.bill(0, KindLane::Ppe, &v(CostClass::Compute, 100));
        p.enter(0, 1);
        p.bill(0, KindLane::Spe, &v(CostClass::DataCacheFill, 50));
        let prof = p.finish();
        let names = vec!["main".to_string(), "work".to_string()];
        let out = prof.collapsed(&|m| method_name(&names, m));
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(
            lines,
            vec![
                "ppe;(runtime) 1",
                "ppe;(runtime);main 100",
                "spe;(runtime);main;work 50",
            ]
        );
        let mut sorted = lines.clone();
        sorted.sort();
        assert_eq!(lines, sorted);
    }

    #[test]
    fn totals_sum_every_node_and_kind() {
        let mut p = Profiler::new();
        p.enter(0, 0);
        p.bill(0, KindLane::Ppe, &v(CostClass::Compute, 5));
        p.bill(0, KindLane::Spe, &v(CostClass::Migration, 6));
        p.bill_runtime(KindLane::Ppe, &v(CostClass::FaultRetry, 7));
        let prof = p.finish();
        let t = prof.totals();
        assert_eq!(t[KindLane::Ppe as usize].total(), 12);
        assert_eq!(t[KindLane::Spe as usize].total(), 6);
    }
}
