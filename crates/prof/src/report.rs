//! Report generation: per-method aggregation, top-N tables, and the
//! differential mode.
//!
//! Everything here is deterministic: aggregation walks the trie in node
//! order (itself deterministic), and every sort breaks ties on method id.

use crate::{KindLane, Profile};
use hera_trace::{CostClass, CostVec};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Per-method aggregate over every call path the method appears in.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MethodRow {
    pub method: u32,
    /// Self cost per core kind (cycles charged while this method was
    /// innermost), split by cost class.
    pub self_cost: [CostVec; KindLane::COUNT],
    /// Inclusive cycles (self + callees, both kinds); recursive frames are
    /// counted once.
    pub inclusive: u64,
}

impl MethodRow {
    /// Self cycles summed over both kinds and all classes.
    pub fn self_total(&self) -> u64 {
        self.self_cost.iter().map(|c| c.total()).sum()
    }

    /// Self cycles of one class, summed over both kinds.
    pub fn class_total(&self, class: CostClass) -> u64 {
        self.self_cost.iter().map(|c| c.get(class)).sum()
    }
}

/// One line of a differential report.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DiffRow {
    pub method: u32,
    /// Self cycles (both kinds, all classes) in the baseline profile.
    pub before: u64,
    /// Self cycles in the comparison profile.
    pub after: u64,
}

impl DiffRow {
    pub fn delta(&self) -> i64 {
        self.after as i64 - self.before as i64
    }
}

impl Profile {
    /// Aggregate the trie per method: self cost by kind/class plus
    /// recursion-safe inclusive cycles. Sorted by self cycles descending,
    /// ties broken by method id.
    pub fn method_rows(&self) -> Vec<MethodRow> {
        let mut rows: BTreeMap<u32, MethodRow> = BTreeMap::new();
        // Self costs: straight sum over nodes sharing a method.
        for n in &self.nodes {
            let row = rows.entry(n.method).or_insert_with(|| MethodRow {
                method: n.method,
                self_cost: [CostVec::ZERO; KindLane::COUNT],
                inclusive: 0,
            });
            for k in 0..KindLane::COUNT {
                row.self_cost[k].merge(&n.cost[k]);
            }
        }
        // Subtree totals per node, children before parents. Children are
        // always created after their parent, so a reverse index walk sees
        // every child before its parent.
        let mut subtree: Vec<u64> = self
            .nodes
            .iter()
            .map(|n| n.cost.iter().map(|c| c.total()).sum())
            .collect();
        for i in (1..self.nodes.len()).rev() {
            let parent = self.nodes[i].parent as usize;
            subtree[parent] += subtree[i];
        }
        // Inclusive: sum subtree totals of each method's *outermost*
        // occurrences only, so recursion doesn't double-count. DFS with an
        // on-path occurrence count per method.
        let mut on_path: BTreeMap<u32, u32> = BTreeMap::new();
        self.walk_inclusive(0, &mut on_path, &subtree, &mut rows);
        let mut out: Vec<MethodRow> = rows.into_values().collect();
        out.sort_by(|a, b| {
            b.self_total()
                .cmp(&a.self_total())
                .then(a.method.cmp(&b.method))
        });
        out
    }

    fn walk_inclusive(
        &self,
        idx: usize,
        on_path: &mut BTreeMap<u32, u32>,
        subtree: &[u64],
        rows: &mut BTreeMap<u32, MethodRow>,
    ) {
        let method = self.nodes[idx].method;
        let depth = on_path.entry(method).or_insert(0);
        if *depth == 0 {
            if let Some(row) = rows.get_mut(&method) {
                row.inclusive += subtree[idx];
            }
        }
        *depth += 1;
        for &child in self.nodes[idx].children.values() {
            self.walk_inclusive(child as usize, on_path, subtree, rows);
        }
        if let Some(d) = on_path.get_mut(&method) {
            *d -= 1;
        }
    }

    /// Render the top-`n` self/inclusive table. Every row lists self
    /// cycles split by core kind and its dominant cost classes.
    pub fn top_table(&self, n: usize, name_of: &dyn Fn(u32) -> String) -> String {
        let totals = self.totals();
        let grand: u64 = totals.iter().map(|c| c.total()).sum();
        let mut out = String::new();
        let _ = writeln!(
            out,
            "total attributed cycles: {grand} (ppe {}, spe {})",
            totals[KindLane::Ppe as usize].total(),
            totals[KindLane::Spe as usize].total()
        );
        let _ = writeln!(out, "cycles by cost class:");
        for class in CostClass::ALL {
            let c: u64 = totals.iter().map(|t| t.get(class)).sum();
            if c > 0 {
                let _ = writeln!(
                    out,
                    "  {:<18} {:>14}  ({:.1}%)",
                    class.label(),
                    c,
                    100.0 * c as f64 / grand.max(1) as f64
                );
            }
        }
        let _ = writeln!(
            out,
            "{:<28} {:>14} {:>14} {:>14} {:>14}  top classes",
            "method", "self", "self-ppe", "self-spe", "inclusive"
        );
        for row in self.method_rows().into_iter().take(n) {
            if row.self_total() == 0 && row.inclusive == 0 {
                continue;
            }
            let mut classes: Vec<(CostClass, u64)> = CostClass::ALL
                .iter()
                .map(|&c| (c, row.class_total(c)))
                .filter(|&(_, v)| v > 0)
                .collect();
            classes.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.index().cmp(&b.0.index())));
            let summary = classes
                .iter()
                .take(3)
                .map(|(c, v)| format!("{}={v}", c.label()))
                .collect::<Vec<_>>()
                .join(" ");
            let _ = writeln!(
                out,
                "{:<28} {:>14} {:>14} {:>14} {:>14}  {}",
                name_of(row.method),
                row.self_total(),
                row.self_cost[KindLane::Ppe as usize].total(),
                row.self_cost[KindLane::Spe as usize].total(),
                row.inclusive,
                summary
            );
        }
        out
    }

    /// Differential mode: per-method self-cycle deltas `other - self`,
    /// sorted by |delta| descending (ties by method id). Methods present
    /// in either profile appear.
    pub fn diff_rows(&self, other: &Profile) -> Vec<DiffRow> {
        let mut map: BTreeMap<u32, DiffRow> = BTreeMap::new();
        for row in self.method_rows() {
            map.insert(
                row.method,
                DiffRow {
                    method: row.method,
                    before: row.self_total(),
                    after: 0,
                },
            );
        }
        for row in other.method_rows() {
            map.entry(row.method)
                .or_insert(DiffRow {
                    method: row.method,
                    before: 0,
                    after: 0,
                })
                .after = row.self_total();
        }
        let mut out: Vec<DiffRow> = map.into_values().collect();
        out.sort_by(|a, b| {
            b.delta()
                .unsigned_abs()
                .cmp(&a.delta().unsigned_abs())
                .then(a.method.cmp(&b.method))
        });
        out
    }

    /// Render a differential report (`before` = self, `after` = other).
    pub fn diff_table(
        &self,
        other: &Profile,
        labels: (&str, &str),
        n: usize,
        name_of: &dyn Fn(u32) -> String,
    ) -> String {
        let before_total: u64 = self.totals().iter().map(|c| c.total()).sum();
        let after_total: u64 = other.totals().iter().map(|c| c.total()).sum();
        let mut out = String::new();
        let _ = writeln!(
            out,
            "profile diff: {} ({} cycles) -> {} ({} cycles), delta {:+}",
            labels.0,
            before_total,
            labels.1,
            after_total,
            after_total as i64 - before_total as i64
        );
        let _ = writeln!(
            out,
            "{:<28} {:>14} {:>14} {:>15}",
            "method", labels.0, labels.1, "delta"
        );
        for row in self.diff_rows(other).into_iter().take(n) {
            if row.before == 0 && row.after == 0 {
                continue;
            }
            let _ = writeln!(
                out,
                "{:<28} {:>14} {:>14} {:>+15}",
                name_of(row.method),
                row.before,
                row.after,
                row.delta()
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{method_name, Profiler, RUNTIME_METHOD};

    fn v(class: CostClass, cycles: u64) -> CostVec {
        let mut c = CostVec::ZERO;
        c.add(class, cycles);
        c
    }

    /// main -> a -> b, and main -> b: b appears on two paths.
    fn sample() -> Profile {
        let mut p = Profiler::new();
        p.enter(0, 0); // main
        p.bill(0, KindLane::Ppe, &v(CostClass::Compute, 100));
        p.enter(0, 1); // a
        p.bill(0, KindLane::Ppe, &v(CostClass::Compute, 40));
        p.enter(0, 2); // b
        p.bill(0, KindLane::Ppe, &v(CostClass::DataCacheFill, 10));
        p.leave(0);
        p.leave(0);
        p.enter(0, 2); // b again, different path
        p.bill(0, KindLane::Spe, &v(CostClass::Compute, 5));
        p.leave(0);
        p.finish()
    }

    #[test]
    fn method_rows_aggregate_paths_and_rank_by_self() {
        let rows = sample().method_rows();
        // Order: main(100) > a(40) > b(15) > (runtime)(0).
        let ids: Vec<u32> = rows.iter().map(|r| r.method).collect();
        assert_eq!(ids, vec![0, 1, 2, RUNTIME_METHOD]);
        let b = &rows[2];
        assert_eq!(b.self_total(), 15);
        assert_eq!(b.self_cost[KindLane::Ppe as usize].total(), 10);
        assert_eq!(b.self_cost[KindLane::Spe as usize].total(), 5);
        // Inclusive: main covers everything, a covers itself + one b.
        assert_eq!(rows[0].inclusive, 155);
        assert_eq!(rows[1].inclusive, 50);
        assert_eq!(b.inclusive, 15);
    }

    #[test]
    fn recursion_counts_inclusive_once() {
        let mut p = Profiler::new();
        p.enter(0, 7);
        p.bill(0, KindLane::Ppe, &v(CostClass::Compute, 10));
        p.enter(0, 7); // recursive call
        p.bill(0, KindLane::Ppe, &v(CostClass::Compute, 5));
        p.leave(0);
        p.leave(0);
        let rows = p.finish().method_rows();
        let m7 = rows.iter().find(|r| r.method == 7).unwrap();
        assert_eq!(m7.self_total(), 15);
        assert_eq!(m7.inclusive, 15); // not 20: inner frame counted once
    }

    #[test]
    fn diff_reports_per_method_deltas_largest_first() {
        let a = sample();
        let mut p = Profiler::new();
        p.enter(0, 0);
        p.bill(0, KindLane::Spe, &v(CostClass::Compute, 30)); // main shrank by 70
        p.enter(0, 3); // new method appears
        p.bill(0, KindLane::Spe, &v(CostClass::Migration, 8));
        let b = p.finish();
        let rows = a.diff_rows(&b);
        assert_eq!(rows[0].method, 0);
        assert_eq!(rows[0].delta(), -70);
        let gone = rows.iter().find(|r| r.method == 1).unwrap();
        assert_eq!((gone.before, gone.after), (40, 0));
        let new = rows.iter().find(|r| r.method == 3).unwrap();
        assert_eq!((new.before, new.after), (0, 8));
        // Self-diff is all zeros.
        assert!(a.diff_rows(&a).iter().all(|r| r.delta() == 0));
    }

    #[test]
    fn rendered_tables_are_deterministic() {
        let prof = sample();
        let names: Vec<String> = ["main", "a", "b"].iter().map(|s| s.to_string()).collect();
        let resolve = |m| method_name(&names, m);
        assert_eq!(prof.top_table(10, &resolve), prof.top_table(10, &resolve));
        let t = prof.top_table(10, &resolve);
        assert!(t.contains("main"));
        assert!(t.contains("dcache-fill"));
        let d = prof.diff_table(&prof, ("quiet", "quiet"), 10, &resolve);
        assert!(d.contains("delta"));
        assert_eq!(d, prof.diff_table(&prof, ("quiet", "quiet"), 10, &resolve));
    }
}
