//! Seeded, deterministic RNG primitives shared across the simulator.
//!
//! The whole simulator runs in *virtual* time: every event is ordered by
//! per-core cycle counters, never by the host clock. Anything random —
//! fault draws, synthetic request traces — must therefore come from
//! counter-based streams keyed only by plain data, so that two runs with
//! the same seed make exactly the same draws in exactly the same order on
//! every platform.
//!
//! This crate is the single home of those primitives:
//!
//! * [`splitmix64`] — the classic stateless mixer.
//! * [`draw_word`] — the `(seed, core, site, count)` keyed stream used by
//!   `hera-faults` (re-exported there for compatibility).
//! * [`SplitMix64`] — a tiny sequential stream for generators that consume
//!   draws in one deterministic order (e.g. the cluster trace generator).

/// The classic splitmix64 mixer: a bijective avalanche over `u64`.
///
/// Good enough statistical quality for fault sampling and synthetic
/// traffic, trivially portable, and — crucially — stateless: the output
/// depends only on the input word.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Derive the draw word for `(seed, core, site, count)`.
///
/// Each component passes through the mixer before being combined so that
/// adjacent cores/sites/counts land in unrelated parts of the stream.
#[inline]
pub fn draw_word(seed: u64, core: u64, site: u64, count: u64) -> u64 {
    let a = splitmix64(seed ^ 0x243f_6a88_85a3_08d3);
    let b = splitmix64(a ^ core.wrapping_mul(0x1000_0000_01b3));
    let c = splitmix64(b ^ site.wrapping_mul(0x0100_0000_01b3));
    splitmix64(c ^ count)
}

/// A sequential splitmix64 stream: `next_u64` walks a Weyl sequence
/// through the mixer.
///
/// Use this where draws are consumed in one deterministic order (a trace
/// generator walking forward through virtual time); use [`draw_word`]
/// where draws must be addressable by position (fault injection, where
/// per-site counters are snapshotted and restored).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Start a stream at `seed`. Equal seeds yield equal streams.
    #[inline]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit draw.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)` (`bound` 0 yields 0).
    ///
    /// Plain modulo: the bias is ≤ bound/2^64, far below anything the
    /// simulator can observe, and keeps the draw a single deterministic
    /// integer operation.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_stateless_and_stable() {
        assert_eq!(splitmix64(0), splitmix64(0));
        // Known-answer: splitmix64(0) from the reference implementation.
        assert_eq!(splitmix64(0), 0xe220_a839_7b1d_cdaf);
        assert_ne!(splitmix64(1), splitmix64(2));
    }

    #[test]
    fn draw_word_varies_by_every_component() {
        let base = draw_word(1, 2, 3, 4);
        assert_eq!(base, draw_word(1, 2, 3, 4));
        assert_ne!(base, draw_word(9, 2, 3, 4));
        assert_ne!(base, draw_word(1, 9, 3, 4));
        assert_ne!(base, draw_word(1, 2, 9, 4));
        assert_ne!(base, draw_word(1, 2, 3, 9));
    }

    #[test]
    fn stream_matches_mixer_over_weyl_sequence() {
        let mut s = SplitMix64::new(7);
        assert_eq!(s.next_u64(), splitmix64(7));
        // Second draw mixes the advanced Weyl state, not the output.
        let mut t = SplitMix64::new(7);
        t.next_u64();
        assert_eq!(t, s);
    }

    #[test]
    fn next_below_is_bounded() {
        let mut s = SplitMix64::new(42);
        for _ in 0..1000 {
            assert!(s.next_below(10) < 10);
        }
        assert_eq!(SplitMix64::new(1).next_below(0), 0);
    }
}
