//! hera-snap: the Hera-JVM snapshot container format.
//!
//! A snapshot is a small header followed by an opaque payload:
//!
//! ```text
//! offset  size  field
//! 0       8     magic  "HSNAP\0\0\0"
//! 8       4     format version (little-endian u32)
//! 12      4     flags (must be zero in version 1)
//! 16      8     payload length in bytes (little-endian u64)
//! 24      4     CRC-32 (IEEE) of the payload
//! 28      n     payload
//! ```
//!
//! Everything inside the payload is written with the little-endian
//! primitives of [`SnapWriter`] and read back with the bounds-checked
//! [`SnapReader`]; there is no self-describing structure and no external
//! serialization dependency. The CRC detects any single-bit flip in the
//! payload; flips inside the header are caught by the explicit magic,
//! version, flags, and length checks. Large mostly-zero buffers (the heap,
//! SPE local stores) go through the zero-run-length codec in
//! [`rle_encode`]/[`rle_decode`].
//!
//! The container is deliberately dumb: interpretation of the payload —
//! and all semantic validation — lives in `hera-core::snapshot`, which
//! bumps [`FORMAT_VERSION`] whenever the payload layout changes.

use std::sync::OnceLock;

/// Magic bytes at the start of every snapshot file.
pub const MAGIC: [u8; 8] = *b"HSNAP\0\0\0";
/// Current on-disk format version. Bump whenever the payload layout changes.
/// v2: the CORE section carries the fault plan explicitly (after the
/// program digest) and the config digest zeroes the whole plan, enabling
/// cross-machine snapshot adoption.
/// v3: the carried fault plan gains the straggler shape
/// (`slowdown_factor`, `slowdown_from_cycle`).
pub const FORMAT_VERSION: u32 = 3;
/// Total header size in bytes (magic + version + flags + length + crc).
pub const HEADER_LEN: usize = 28;

/// Typed failure modes for snapshot decoding. Corrupted input must always
/// surface as one of these — never a panic, never a silently wrong resume.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapError {
    /// Filesystem error while reading or writing a snapshot.
    Io(String),
    /// The file does not start with the `HSNAP` magic.
    BadMagic,
    /// The format version is not one this build understands.
    BadVersion { found: u32, expected: u32 },
    /// Reserved header flags were non-zero.
    BadFlags(u32),
    /// The input ended before the declared length.
    Truncated { wanted: usize, available: usize },
    /// The header-declared payload length disagrees with the actual bytes.
    LengthMismatch { declared: u64, actual: u64 },
    /// The payload CRC does not match the header.
    ChecksumMismatch { stored: u32, computed: u32 },
    /// The payload decoded but failed a structural or semantic check.
    Corrupt(String),
}

impl std::fmt::Display for SnapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapError::Io(msg) => write!(f, "snapshot i/o error: {msg}"),
            SnapError::BadMagic => write!(f, "not a hera snapshot (bad magic)"),
            SnapError::BadVersion { found, expected } => {
                write!(
                    f,
                    "unsupported snapshot version {found} (expected {expected})"
                )
            }
            SnapError::BadFlags(flags) => {
                write!(f, "unsupported snapshot flags {flags:#010x}")
            }
            SnapError::Truncated { wanted, available } => {
                write!(
                    f,
                    "snapshot truncated: wanted {wanted} bytes, {available} available"
                )
            }
            SnapError::LengthMismatch { declared, actual } => {
                write!(
                    f,
                    "snapshot length mismatch: header says {declared}, got {actual}"
                )
            }
            SnapError::ChecksumMismatch { stored, computed } => {
                write!(
                    f,
                    "snapshot checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
                )
            }
            SnapError::Corrupt(msg) => write!(f, "corrupt snapshot: {msg}"),
        }
    }
}

impl std::error::Error for SnapError {}

fn crc_table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    0xEDB8_8320 ^ (crc >> 1)
                } else {
                    crc >> 1
                };
            }
            *entry = crc;
        }
        table
    })
}

/// CRC-32 (IEEE 802.3 polynomial) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let table = crc_table();
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = table[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// Fast 64-bit content digest (FNV-1a over 8-byte lanes). Not part of the
/// on-disk format — used for cheap equality checks of large buffers such as
/// the final heap image or a trace lane.
pub fn digest64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut h = OFFSET ^ (bytes.len() as u64).wrapping_mul(PRIME);
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        let v = u64::from_le_bytes(c.try_into().unwrap());
        h = (h ^ v).wrapping_mul(PRIME);
    }
    let mut tail = 0u64;
    for (i, &b) in chunks.remainder().iter().enumerate() {
        tail |= (b as u64) << (8 * i);
    }
    (h ^ tail).wrapping_mul(PRIME)
}

/// Wrap a payload in the versioned, checksummed container header.
pub fn seal(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&0u32.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Validate the container header and checksum, returning the payload slice.
pub fn open(bytes: &[u8]) -> Result<&[u8], SnapError> {
    if bytes.len() < HEADER_LEN {
        return Err(SnapError::Truncated {
            wanted: HEADER_LEN,
            available: bytes.len(),
        });
    }
    if bytes[0..8] != MAGIC {
        return Err(SnapError::BadMagic);
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if version != FORMAT_VERSION {
        return Err(SnapError::BadVersion {
            found: version,
            expected: FORMAT_VERSION,
        });
    }
    let flags = u32::from_le_bytes(bytes[12..16].try_into().unwrap());
    if flags != 0 {
        return Err(SnapError::BadFlags(flags));
    }
    let declared = u64::from_le_bytes(bytes[16..24].try_into().unwrap());
    let actual = (bytes.len() - HEADER_LEN) as u64;
    if declared != actual {
        if declared > actual {
            return Err(SnapError::Truncated {
                wanted: HEADER_LEN + declared as usize,
                available: bytes.len(),
            });
        }
        return Err(SnapError::LengthMismatch { declared, actual });
    }
    let stored = u32::from_le_bytes(bytes[24..28].try_into().unwrap());
    let payload = &bytes[HEADER_LEN..];
    let computed = crc32(payload);
    if stored != computed {
        return Err(SnapError::ChecksumMismatch { stored, computed });
    }
    Ok(payload)
}

/// Little-endian payload writer. All integers are fixed-width so that two
/// encodings of structurally equal state have identical lengths.
#[derive(Default)]
pub struct SnapWriter {
    buf: Vec<u8>,
}

impl SnapWriter {
    pub fn new() -> Self {
        Self { buf: Vec::new() }
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn into_inner(self) -> Vec<u8> {
        self.buf
    }

    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Length prefix. Fixed-width u64 so lengths never change encoding size.
    pub fn len_prefix(&mut self, n: usize) {
        self.u64(n as u64);
    }

    pub fn raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Length-prefixed byte string.
    pub fn blob(&mut self, bytes: &[u8]) {
        self.len_prefix(bytes.len());
        self.raw(bytes);
    }

    pub fn str(&mut self, s: &str) {
        self.blob(s.as_bytes());
    }

    pub fn opt_u32(&mut self, v: Option<u32>) {
        match v {
            None => self.u8(0),
            Some(x) => {
                self.u8(1);
                self.u32(x);
            }
        }
    }

    pub fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            None => self.u8(0),
            Some(x) => {
                self.u8(1);
                self.u64(x);
            }
        }
    }
}

/// Bounds-checked little-endian payload reader. Every read that would run
/// past the end of the buffer returns [`SnapError::Truncated`]; length
/// prefixes are validated against the remaining bytes before any allocation
/// so corrupt lengths cannot trigger huge allocations.
pub struct SnapReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    pub fn position(&self) -> usize {
        self.pos
    }

    pub fn is_done(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// Fails unless every payload byte has been consumed — trailing garbage
    /// is treated as corruption, not ignored.
    pub fn finish(&self) -> Result<(), SnapError> {
        if self.is_done() {
            Ok(())
        } else {
            Err(SnapError::Corrupt(format!(
                "{} trailing bytes after payload",
                self.remaining()
            )))
        }
    }

    pub fn take(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        if self.remaining() < n {
            return Err(SnapError::Truncated {
                wanted: self.pos + n,
                available: self.buf.len(),
            });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    pub fn u8(&mut self) -> Result<u8, SnapError> {
        Ok(self.take(1)?[0])
    }

    pub fn bool(&mut self) -> Result<bool, SnapError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(SnapError::Corrupt(format!("invalid bool byte {v:#04x}"))),
        }
    }

    pub fn u16(&mut self) -> Result<u16, SnapError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    pub fn u32(&mut self) -> Result<u32, SnapError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn u64(&mut self) -> Result<u64, SnapError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn i64(&mut self) -> Result<i64, SnapError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read a length prefix that counts elements of `elem_size` bytes each,
    /// validating the implied byte count against the remaining payload.
    pub fn len_prefix(&mut self, elem_size: usize) -> Result<usize, SnapError> {
        let n = self.u64()?;
        let bytes = n.checked_mul(elem_size.max(1) as u64).ok_or_else(|| {
            SnapError::Corrupt(format!("length prefix overflow: {n} x {elem_size}"))
        })?;
        if bytes > self.remaining() as u64 {
            return Err(SnapError::Corrupt(format!(
                "length prefix {n} ({bytes} bytes) exceeds remaining payload {}",
                self.remaining()
            )));
        }
        Ok(n as usize)
    }

    /// Length-prefixed byte string.
    pub fn blob(&mut self) -> Result<&'a [u8], SnapError> {
        let n = self.len_prefix(1)?;
        self.take(n)
    }

    pub fn str(&mut self) -> Result<String, SnapError> {
        let bytes = self.blob()?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| SnapError::Corrupt("invalid utf-8 string".into()))
    }

    pub fn opt_u32(&mut self) -> Result<Option<u32>, SnapError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u32()?)),
            v => Err(SnapError::Corrupt(format!("invalid option tag {v:#04x}"))),
        }
    }

    pub fn opt_u64(&mut self) -> Result<Option<u64>, SnapError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u64()?)),
            v => Err(SnapError::Corrupt(format!("invalid option tag {v:#04x}"))),
        }
    }
}

const RLE_ZERO: u8 = 0;
const RLE_LITERAL: u8 = 1;

/// Zero-run-length encode `data` into `w`. Large buffers in the machine
/// (the 32 MB heap, 256 KB local stores) are overwhelmingly zero, so runs
/// of zeros are stored as a tag + length while everything else is copied
/// literally. Format: u64 total length, then chunks of
/// `(u8 tag, u64 len[, len literal bytes])` until the total is covered.
pub fn rle_encode(w: &mut SnapWriter, data: &[u8]) {
    w.len_prefix(data.len());
    let mut i = 0;
    while i < data.len() {
        if data[i] == 0 {
            let start = i;
            while i < data.len() && data[i] == 0 {
                i += 1;
            }
            w.u8(RLE_ZERO);
            w.len_prefix(i - start);
        } else {
            let start = i;
            // A literal run ends at the next "worthwhile" zero run: chasing
            // every isolated zero would bloat the chunk table.
            while i < data.len() {
                if data[i] == 0 {
                    let z = data[i..].iter().take_while(|&&b| b == 0).count();
                    if z >= 24 {
                        break;
                    }
                    i += z;
                } else {
                    i += 1;
                }
            }
            w.u8(RLE_LITERAL);
            w.len_prefix(i - start);
            w.raw(&data[start..i]);
        }
    }
}

/// Decode a zero-run-length buffer, requiring its total length to equal
/// `expected_len` exactly.
pub fn rle_decode(r: &mut SnapReader<'_>, expected_len: usize) -> Result<Vec<u8>, SnapError> {
    let total = r.u64()? as usize;
    if total != expected_len {
        return Err(SnapError::Corrupt(format!(
            "rle buffer length {total} does not match expected {expected_len}"
        )));
    }
    let mut out = vec![0u8; total];
    let mut filled = 0usize;
    while filled < total {
        let tag = r.u8()?;
        let run = r.u64()? as usize;
        if run == 0 || run > total - filled {
            return Err(SnapError::Corrupt(format!(
                "rle run of {run} bytes overflows buffer ({filled}/{total} filled)"
            )));
        }
        match tag {
            RLE_ZERO => {}
            RLE_LITERAL => {
                let bytes = r.take(run)?;
                out[filled..filled + run].copy_from_slice(bytes);
            }
            other => {
                return Err(SnapError::Corrupt(format!("invalid rle tag {other:#04x}")));
            }
        }
        filled += run;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn writer_reader_round_trip() {
        let mut w = SnapWriter::new();
        w.u8(0xAB);
        w.bool(true);
        w.bool(false);
        w.u16(0xBEEF);
        w.u32(0xDEAD_BEEF);
        w.u64(0x0123_4567_89AB_CDEF);
        w.i64(-42);
        w.str("hera");
        w.blob(&[1, 2, 3]);
        w.opt_u32(None);
        w.opt_u32(Some(7));
        w.opt_u64(Some(u64::MAX));

        let buf = w.into_inner();
        let mut r = SnapReader::new(&buf);
        assert_eq!(r.u8().unwrap(), 0xAB);
        assert!(r.bool().unwrap());
        assert!(!r.bool().unwrap());
        assert_eq!(r.u16().unwrap(), 0xBEEF);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.i64().unwrap(), -42);
        assert_eq!(r.str().unwrap(), "hera");
        assert_eq!(r.blob().unwrap(), &[1, 2, 3]);
        assert_eq!(r.opt_u32().unwrap(), None);
        assert_eq!(r.opt_u32().unwrap(), Some(7));
        assert_eq!(r.opt_u64().unwrap(), Some(u64::MAX));
        r.finish().unwrap();
    }

    #[test]
    fn reader_rejects_overrun_and_trailing() {
        let buf = [1u8, 2, 3];
        let mut r = SnapReader::new(&buf);
        assert!(matches!(r.u64(), Err(SnapError::Truncated { .. })));
        let mut r = SnapReader::new(&buf);
        r.u8().unwrap();
        assert!(matches!(r.finish(), Err(SnapError::Corrupt(_))));
    }

    #[test]
    fn length_prefix_caps_allocation() {
        // A declared length far beyond the payload must be rejected before
        // any allocation happens.
        let mut w = SnapWriter::new();
        w.u64(u64::MAX / 2);
        let buf = w.into_inner();
        let mut r = SnapReader::new(&buf);
        assert!(matches!(r.len_prefix(8), Err(SnapError::Corrupt(_))));
    }

    #[test]
    fn seal_open_round_trip() {
        let payload = b"the quick brown fox".to_vec();
        let sealed = seal(&payload);
        assert_eq!(open(&sealed).unwrap(), &payload[..]);
    }

    #[test]
    fn open_rejects_bad_header_fields() {
        let sealed = seal(b"payload");

        let mut bad = sealed.clone();
        bad[0] ^= 0xFF;
        assert_eq!(open(&bad), Err(SnapError::BadMagic));

        let mut bad = sealed.clone();
        bad[8] = 99;
        assert!(matches!(
            open(&bad),
            Err(SnapError::BadVersion { found: 99, .. })
        ));

        let mut bad = sealed.clone();
        bad[12] = 1;
        assert!(matches!(open(&bad), Err(SnapError::BadFlags(_))));

        let mut bad = sealed.clone();
        bad[16] = bad[16].wrapping_add(1);
        assert!(matches!(
            open(&bad),
            Err(SnapError::Truncated { .. }) | Err(SnapError::LengthMismatch { .. })
        ));

        // Truncation at every possible length must be typed, never a panic.
        for cut in 0..sealed.len() {
            assert!(
                open(&sealed[..cut]).is_err(),
                "truncation at {cut} accepted"
            );
        }

        // Extra trailing bytes are a length mismatch.
        let mut bad = sealed.clone();
        bad.push(0);
        assert!(matches!(open(&bad), Err(SnapError::LengthMismatch { .. })));
    }

    #[test]
    fn container_bit_flip_sweep() {
        // Every single-bit flip anywhere in the sealed container must be
        // rejected with a typed error.
        let sealed = seal(b"deterministic bit flip sweep payload \x00\x00\x00\x01\x02");
        for byte in 0..sealed.len() {
            for bit in 0..8 {
                let mut flipped = sealed.clone();
                flipped[byte] ^= 1 << bit;
                assert!(
                    open(&flipped).is_err(),
                    "bit flip at byte {byte} bit {bit} was accepted"
                );
            }
        }
    }

    #[test]
    fn rle_round_trips() {
        let cases: Vec<Vec<u8>> = vec![
            vec![],
            vec![0; 4096],
            vec![7; 100],
            {
                let mut v = vec![0u8; 1000];
                v[500] = 9;
                v[999] = 1;
                v
            },
            {
                // Alternating short zero gaps inside a literal run.
                let mut v = Vec::new();
                for i in 0..600u32 {
                    v.push(if i % 7 == 0 { 0 } else { (i % 251) as u8 + 1 });
                }
                v.extend_from_slice(&[0; 512]);
                v.push(3);
                v
            },
        ];
        for case in cases {
            let mut w = SnapWriter::new();
            rle_encode(&mut w, &case);
            let buf = w.into_inner();
            let mut r = SnapReader::new(&buf);
            let back = rle_decode(&mut r, case.len()).unwrap();
            r.finish().unwrap();
            assert_eq!(back, case);
        }
    }

    #[test]
    fn rle_rejects_wrong_expected_len_and_overflow_runs() {
        let data = vec![1u8, 2, 3, 0, 0, 0, 0, 0, 0, 0, 0, 0];
        let mut w = SnapWriter::new();
        rle_encode(&mut w, &data);
        let buf = w.into_inner();

        let mut r = SnapReader::new(&buf);
        assert!(matches!(
            rle_decode(&mut r, data.len() + 1),
            Err(SnapError::Corrupt(_))
        ));

        // Hand-built stream whose run overflows the declared total.
        let mut w = SnapWriter::new();
        w.len_prefix(4);
        w.u8(RLE_ZERO);
        w.len_prefix(8);
        let buf = w.into_inner();
        let mut r = SnapReader::new(&buf);
        assert!(matches!(rle_decode(&mut r, 4), Err(SnapError::Corrupt(_))));
    }

    #[test]
    fn digest64_distinguishes_and_is_stable() {
        let a = digest64(b"hello world");
        let b = digest64(b"hello worle");
        assert_ne!(a, b);
        assert_eq!(a, digest64(b"hello world"));
        assert_ne!(digest64(b""), digest64(b"\0"));
    }

    #[test]
    fn encoding_is_deterministic() {
        let payload: Vec<u8> = (0..=255u8).cycle().take(2048).collect();
        assert_eq!(seal(&payload), seal(&payload));
    }
}
