//! The SPE software code cache (paper §3.2.2, Figure 3).
//!
//! Methods must reside in local memory before execution, so they are
//! cached *in their entirety*, bump-allocated, with a complete purge
//! when the cache fills. Lookup avoids a hashtable (no collisions, and
//! virtual invocation falls out naturally): a permanently resident 2 KB
//! class table of contents (TOC) maps each resolved class to its Type
//! Information Block (TIB); TIBs are themselves cached on demand
//! (exploiting class locality) and hold a code pointer + length per
//! method. Invocation therefore double-dereferences TOC → TIB → code —
//! cheap on a hit, because both pointers live in 3–6-cycle local memory
//! — and the lookup repeats on *return*, since the callee may have
//! purged the caller in the meantime.

use crate::CacheFault;
use hera_cell::{CellMachine, CoreId, OpClass};
use hera_isa::{ClassId, MethodId};
use hera_trace::{DmaTag, TraceEvent};
use std::collections::HashMap;

/// Cycles to follow a cached TIB entry (one local-memory indirection).
const TIB_READ_CYCLES: u64 = 4;

/// Statistics for one code cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CodeCacheStats {
    /// Method lookups served from local memory.
    pub method_hits: u64,
    /// Method lookups that had to DMA the method body.
    pub method_misses: u64,
    /// TIB lookups served from local memory.
    pub tib_hits: u64,
    /// TIB lookups that had to DMA the TIB.
    pub tib_misses: u64,
    /// Complete purges.
    pub purges: u64,
    /// Bytes of code + TIBs DMAed in.
    pub bytes_loaded: u64,
    /// TOC consultations (every lookup does one).
    pub toc_lookups: u64,
    /// Lookups of methods too large to cache at the configured size.
    pub bypasses: u64,
}

impl std::ops::AddAssign for CodeCacheStats {
    fn add_assign(&mut self, rhs: CodeCacheStats) {
        self.method_hits += rhs.method_hits;
        self.method_misses += rhs.method_misses;
        self.tib_hits += rhs.tib_hits;
        self.tib_misses += rhs.tib_misses;
        self.purges += rhs.purges;
        self.bytes_loaded += rhs.bytes_loaded;
        self.toc_lookups += rhs.toc_lookups;
        self.bypasses += rhs.bypasses;
    }
}

impl CodeCacheStats {
    /// Fold another cache's counters into this one (the per-SPE → whole
    /// machine aggregation).
    pub fn merge(&mut self, other: &CodeCacheStats) {
        *self += *other;
    }

    /// Method hit rate.
    pub fn method_hit_rate(&self) -> f64 {
        let total = self.method_hits + self.method_misses;
        if total == 0 {
            0.0
        } else {
            self.method_hits as f64 / total as f64
        }
    }

    /// Snapshot these counters into a metrics registry under
    /// `ccache.*` names (the shared counting substrate).
    pub fn fill_metrics(&self, reg: &mut hera_trace::MetricsRegistry) {
        reg.set("ccache.method_hits", self.method_hits);
        reg.set("ccache.method_misses", self.method_misses);
        reg.set("ccache.tib_hits", self.tib_hits);
        reg.set("ccache.tib_misses", self.tib_misses);
        reg.set("ccache.purges", self.purges);
        reg.set("ccache.bytes_loaded", self.bytes_loaded);
        reg.set("ccache.toc_lookups", self.toc_lookups);
        reg.set("ccache.bypasses", self.bypasses);
    }
}

/// The software code cache for one SPE.
#[derive(Clone)]
pub struct CodeCache {
    capacity: u32,
    bump: u32,
    methods: HashMap<MethodId, u32>,
    tibs: HashMap<ClassId, u32>,
    /// Statistics.
    pub stats: CodeCacheStats,
}

impl CodeCache {
    /// Create a code cache over `capacity` bytes of local store.
    pub fn new(capacity: u32) -> CodeCache {
        CodeCache {
            capacity,
            bump: 0,
            methods: HashMap::new(),
            tibs: HashMap::new(),
            stats: CodeCacheStats::default(),
        }
    }

    /// The configured capacity in bytes.
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// Whether a method's code is currently resident (test hook).
    pub fn method_resident(&self, m: MethodId) -> bool {
        self.methods.contains_key(&m)
    }

    /// Whether a class's TIB is currently resident (test hook).
    pub fn tib_resident(&self, c: ClassId) -> bool {
        self.tibs.contains_key(&c)
    }

    /// Bytes currently bump-allocated.
    pub fn used(&self) -> u32 {
        self.bump
    }

    /// Perform the full invoke-time lookup for `method` declared on
    /// `class`: TOC → TIB (cache if needed) → method entry → method code
    /// (cache if needed). Also used on *return* to re-establish the
    /// caller (paper: "This process is repeated on returning from a
    /// method, since the callee method may have been purged").
    ///
    /// Charges all cycles to `core` on `machine`. Fails only when an
    /// injected MFC fault exhausts the DMA retry budget.
    pub fn lookup(
        &mut self,
        machine: &mut CellMachine,
        core: CoreId,
        class: ClassId,
        tib_bytes: u32,
        method: MethodId,
        method_bytes: u32,
    ) -> Result<(), CacheFault> {
        // TOC consultation — the 2 KB TOC is permanently resident.
        let toc = machine.cost_model().toc_lookup_cycles as u64;
        machine.advance(core, toc, OpClass::LocalMemory);
        self.stats.toc_lookups += 1;

        // TIB.
        if self.tibs.contains_key(&class) {
            self.stats.tib_hits += 1;
            machine.emit(
                core,
                TraceEvent::CodeCacheTibHit {
                    class: class.0 as u32,
                },
            );
            machine.advance(core, TIB_READ_CYCLES, OpClass::LocalMemory);
        } else {
            self.stats.tib_misses += 1;
            machine.emit(
                core,
                TraceEvent::CodeCacheTibMiss {
                    class: class.0 as u32,
                    bytes: tib_bytes,
                },
            );
            self.install(machine, core, tib_bytes)?;
            self.tibs.insert(class, tib_bytes);
        }

        // Method entry read from the (now resident) TIB.
        machine.advance(core, TIB_READ_CYCLES, OpClass::LocalMemory);

        // Method code.
        if self.methods.contains_key(&method) {
            self.stats.method_hits += 1;
            machine.emit(core, TraceEvent::CodeCacheHit { method: method.0 });
        } else {
            self.stats.method_misses += 1;
            machine.emit(
                core,
                TraceEvent::CodeCacheMiss {
                    method: method.0,
                    bytes: method_bytes,
                },
            );
            if method_bytes > self.capacity {
                // Cannot ever fit: stream it in each time, uncached.
                self.stats.bypasses += 1;
                machine.dma_tagged(core, method_bytes.max(1), DmaTag::CodeCacheLoad)?;
                self.stats.bytes_loaded += method_bytes as u64;
                return Ok(());
            }
            self.install(machine, core, method_bytes)?;
            self.methods.insert(method, method_bytes);
        }
        Ok(())
    }

    /// Bump-allocate `bytes`, purging everything first if they do not
    /// fit, then DMA them in.
    fn install(
        &mut self,
        machine: &mut CellMachine,
        core: CoreId,
        bytes: u32,
    ) -> Result<(), CacheFault> {
        if bytes > self.capacity {
            // Oversized TIB/method at tiny sweep sizes: stream, uncached.
            self.stats.bypasses += 1;
            machine.dma_tagged(core, bytes.max(1), DmaTag::CodeCacheLoad)?;
            self.stats.bytes_loaded += bytes as u64;
            return Ok(());
        }
        if self.bump + bytes > self.capacity {
            machine.emit(
                core,
                TraceEvent::CodeCachePurge {
                    bytes_in_use: self.bump,
                },
            );
            self.purge();
        }
        machine.dma_tagged(core, bytes, DmaTag::CodeCacheLoad)?;
        self.stats.bytes_loaded += bytes as u64;
        self.bump += bytes;
        Ok(())
    }

    /// Drop every cached method and TIB (code is read-only, so a purge
    /// writes nothing back).
    pub fn purge(&mut self) {
        self.methods.clear();
        self.tibs.clear();
        self.bump = 0;
        self.stats.purges += 1;
    }

    /// Resident contents for a snapshot: bump pointer, resident methods
    /// and TIBs (both sorted by id for a canonical encoding). Stats are
    /// public and captured separately.
    #[allow(clippy::type_complexity)]
    pub fn export_state(&self) -> (u32, Vec<(MethodId, u32)>, Vec<(ClassId, u32)>) {
        let mut methods: Vec<(MethodId, u32)> =
            self.methods.iter().map(|(&m, &b)| (m, b)).collect();
        methods.sort_unstable_by_key(|&(m, _)| m.0);
        let mut tibs: Vec<(ClassId, u32)> = self.tibs.iter().map(|(&c, &b)| (c, b)).collect();
        tibs.sort_unstable_by_key(|&(c, _)| c.0);
        (self.bump, methods, tibs)
    }

    /// Restore the contents captured by [`CodeCache::export_state`].
    /// Fails if the claimed residency cannot fit the configured capacity.
    pub fn import_state(
        &mut self,
        bump: u32,
        methods: Vec<(MethodId, u32)>,
        tibs: Vec<(ClassId, u32)>,
    ) -> Result<(), &'static str> {
        if bump > self.capacity {
            return Err("code-cache bump pointer exceeds capacity");
        }
        let resident: u64 = methods.iter().map(|&(_, b)| b as u64).sum::<u64>()
            + tibs.iter().map(|&(_, b)| b as u64).sum::<u64>();
        if resident > bump as u64 {
            return Err("code-cache resident bytes exceed bump pointer");
        }
        self.bump = bump;
        self.methods = methods.into_iter().collect();
        self.tibs = tibs.into_iter().collect();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hera_cell::CellConfig;

    const SPE: CoreId = CoreId::Spe(0);

    fn machine() -> CellMachine {
        CellMachine::new(CellConfig::default())
    }

    #[test]
    fn cold_lookup_loads_tib_and_method() {
        let mut m = machine();
        let mut cc = CodeCache::new(32 << 10);
        cc.lookup(&mut m, SPE, ClassId(0), 64, MethodId(0), 512)
            .unwrap();
        assert_eq!(cc.stats.tib_misses, 1);
        assert_eq!(cc.stats.method_misses, 1);
        assert_eq!(cc.stats.bytes_loaded, 576);
        assert!(cc.method_resident(MethodId(0)));
        assert!(cc.tib_resident(ClassId(0)));
    }

    #[test]
    fn warm_lookup_is_all_hits_and_cheap() {
        let mut m = machine();
        let mut cc = CodeCache::new(32 << 10);
        cc.lookup(&mut m, SPE, ClassId(0), 64, MethodId(0), 512)
            .unwrap();
        let t0 = m.now(SPE);
        cc.lookup(&mut m, SPE, ClassId(0), 64, MethodId(0), 512)
            .unwrap();
        let warm = m.now(SPE) - t0;
        assert_eq!(cc.stats.tib_hits, 1);
        assert_eq!(cc.stats.method_hits, 1);
        // toc(6) + tib read(4) + entry read(4) = 14 cycles, all local.
        assert_eq!(warm, 14);
    }

    #[test]
    fn class_locality_shares_tibs() {
        let mut m = machine();
        let mut cc = CodeCache::new(32 << 10);
        cc.lookup(&mut m, SPE, ClassId(3), 96, MethodId(10), 256)
            .unwrap();
        cc.lookup(&mut m, SPE, ClassId(3), 96, MethodId(11), 256)
            .unwrap();
        assert_eq!(cc.stats.tib_misses, 1);
        assert_eq!(cc.stats.tib_hits, 1);
        assert_eq!(cc.stats.method_misses, 2);
    }

    #[test]
    fn fill_purges_everything() {
        let mut m = machine();
        let mut cc = CodeCache::new(2048);
        cc.lookup(&mut m, SPE, ClassId(0), 64, MethodId(0), 900)
            .unwrap();
        cc.lookup(&mut m, SPE, ClassId(0), 64, MethodId(1), 900)
            .unwrap();
        assert!(cc.method_resident(MethodId(0)));
        // The third method does not fit: complete purge, then insert.
        cc.lookup(&mut m, SPE, ClassId(0), 64, MethodId(2), 900)
            .unwrap();
        assert_eq!(cc.stats.purges, 1);
        assert!(!cc.method_resident(MethodId(0)));
        assert!(!cc.method_resident(MethodId(1)));
        assert!(cc.method_resident(MethodId(2)));
        // TIBs were purged too.
        assert!(!cc.tib_resident(ClassId(0)));
    }

    #[test]
    fn return_relookup_reloads_purged_caller() {
        let mut m = machine();
        let mut cc = CodeCache::new(2048);
        // Caller cached…
        cc.lookup(&mut m, SPE, ClassId(0), 64, MethodId(0), 900)
            .unwrap();
        // …callee loads evict it…
        cc.lookup(&mut m, SPE, ClassId(0), 64, MethodId(1), 900)
            .unwrap();
        cc.lookup(&mut m, SPE, ClassId(0), 64, MethodId(2), 900)
            .unwrap();
        assert!(!cc.method_resident(MethodId(0)));
        // …so the return-path lookup must miss and reload.
        let misses = cc.stats.method_misses;
        cc.lookup(&mut m, SPE, ClassId(0), 64, MethodId(0), 900)
            .unwrap();
        assert_eq!(cc.stats.method_misses, misses + 1);
    }

    #[test]
    fn oversized_method_streams_without_caching() {
        let mut m = machine();
        let mut cc = CodeCache::new(1024);
        cc.lookup(&mut m, SPE, ClassId(0), 64, MethodId(0), 4096)
            .unwrap();
        cc.lookup(&mut m, SPE, ClassId(0), 64, MethodId(0), 4096)
            .unwrap();
        assert_eq!(cc.stats.method_misses, 2);
        assert_eq!(cc.stats.bypasses, 2);
        assert!(!cc.method_resident(MethodId(0)));
    }

    #[test]
    fn misses_charge_main_memory_cycles() {
        let mut m = machine();
        let mut cc = CodeCache::new(32 << 10);
        cc.lookup(&mut m, SPE, ClassId(0), 64, MethodId(0), 2048)
            .unwrap();
        assert!(m.breakdown(SPE).cycles(OpClass::MainMemory) > 0);
        assert!(m.breakdown(SPE).cycles(OpClass::LocalMemory) > 0);
    }

    #[test]
    fn hit_rate_reporting() {
        let mut s = CodeCacheStats::default();
        assert_eq!(s.method_hit_rate(), 0.0);
        s.method_hits = 9;
        s.method_misses = 1;
        assert!((s.method_hit_rate() - 0.9).abs() < 1e-12);
    }
}
