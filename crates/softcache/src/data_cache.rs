//! The SPE software data cache (paper §3.2.1).
//!
//! Design decisions, all taken from the paper:
//!
//! * **Transfer big blocks.** DMA setup is expensive (≈40 cycles), so an
//!   object is transferred *whole* on first touch (its size is known
//!   from bytecode type information), and an array access pulls a block
//!   of up to 1 KB of neighbouring elements.
//! * **Bump-pointer allocation, flush when full.** Cached units are not
//!   equally sized, so space is bump-allocated; when the region (or the
//!   lookup table) fills, the whole cache is purged — after writing
//!   dirty data back.
//! * **Hashtable lookup.** A small local-memory-resident open-addressing
//!   table maps main-memory addresses to local copies.
//!
//! Write-back granularity is the *dirty span* of a unit (the byte range
//! actually written), which is how an MFC put of a modified region
//! behaves; unsynchronised false sharing within a span can still clobber
//! concurrent remote writes, exactly as on the real hardware.

use crate::CacheFault;
use hera_cell::{CellMachine, CoreId, OpClass};
use hera_isa::{Slot, Ty, Value};
use hera_mem::heap::codec;
use hera_mem::Heap;
use hera_trace::{DmaTag, TraceEvent};

/// Statistics for one data cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DataCacheStats {
    /// Lookups that found their unit cached.
    pub hits: u64,
    /// Lookups that had to DMA.
    pub misses: u64,
    /// Whole-cache purges (fills, lock acquires, volatile reads, GC).
    pub purges: u64,
    /// Dirty units written back.
    pub writebacks: u64,
    /// Bytes DMAed in.
    pub bytes_fetched: u64,
    /// Bytes DMAed out (write-backs).
    pub bytes_written_back: u64,
    /// Accesses that bypassed the cache (unit larger than the region).
    pub bypasses: u64,
}

impl std::ops::AddAssign for DataCacheStats {
    fn add_assign(&mut self, rhs: DataCacheStats) {
        self.hits += rhs.hits;
        self.misses += rhs.misses;
        self.purges += rhs.purges;
        self.writebacks += rhs.writebacks;
        self.bytes_fetched += rhs.bytes_fetched;
        self.bytes_written_back += rhs.bytes_written_back;
        self.bypasses += rhs.bypasses;
    }
}

impl DataCacheStats {
    /// Fold another cache's counters into this one (the per-SPE → whole
    /// machine aggregation).
    pub fn merge(&mut self, other: &DataCacheStats) {
        *self += *other;
    }

    /// Hit rate over cacheable accesses.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Snapshot these counters into a metrics registry under
    /// `dcache.*` names (the shared counting substrate).
    pub fn fill_metrics(&self, reg: &mut hera_trace::MetricsRegistry) {
        reg.set("dcache.hits", self.hits);
        reg.set("dcache.misses", self.misses);
        reg.set("dcache.purges", self.purges);
        reg.set("dcache.writebacks", self.writebacks);
        reg.set("dcache.bytes_fetched", self.bytes_fetched);
        reg.set("dcache.bytes_written_back", self.bytes_written_back);
        reg.set("dcache.bypasses", self.bypasses);
    }
}

#[derive(Clone, Copy, Debug)]
struct Entry {
    main_addr: u32,
    local_off: u32,
    len: u32,
    /// Dirty byte span within the unit, `dirty_lo < dirty_hi` iff dirty.
    dirty_lo: u32,
    dirty_hi: u32,
}

impl Entry {
    fn is_dirty(&self) -> bool {
        self.dirty_lo < self.dirty_hi
    }
}

/// Cycles to install a unit into the table and bump the allocator
/// (hash insert, bump arithmetic, and the MFC tag-group wait check).
const INSERT_CYCLES: u64 = 40;

/// The software data cache for one SPE.
#[derive(Clone)]
pub struct DataCache {
    capacity: u32,
    array_block_bytes: u32,
    bump: u32,
    local: Vec<u8>,
    table: Vec<Option<Entry>>,
    entries: usize,
    max_entries: usize,
    /// Statistics.
    pub stats: DataCacheStats,
}

fn align8(v: u32) -> u32 {
    (v + 7) & !7
}

impl DataCache {
    /// Default array block transfer size (paper: "a block of up to 1KB
    /// of neighbouring elements").
    pub const DEFAULT_ARRAY_BLOCK: u32 = 1024;

    /// Create a cache over `capacity` bytes of local store.
    pub fn new(capacity: u32) -> DataCache {
        Self::with_block_size(capacity, Self::DEFAULT_ARRAY_BLOCK)
    }

    /// Create a cache with a custom array block size (ablation E6).
    pub fn with_block_size(capacity: u32, array_block_bytes: u32) -> DataCache {
        let slots = (capacity / 128).next_power_of_two().clamp(64, 8192) as usize;
        DataCache {
            capacity,
            array_block_bytes: array_block_bytes.max(16),
            bump: 0,
            local: vec![0; capacity as usize],
            table: vec![None; slots],
            entries: 0,
            max_entries: slots * 3 / 4,
            stats: DataCacheStats::default(),
        }
    }

    /// The configured capacity in bytes.
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// The configured array block transfer size.
    pub fn array_block_bytes(&self) -> u32 {
        self.array_block_bytes
    }

    /// Whether a unit at `main_addr` is currently cached (test hook).
    pub fn contains(&self, main_addr: u32) -> bool {
        self.probe(main_addr).is_some()
    }

    /// Whether the cached unit at `main_addr` has unwritten local
    /// modifications (test hook).
    pub fn is_dirty(&self, main_addr: u32) -> bool {
        self.probe(main_addr)
            .map(|slot| self.table[slot].as_ref().is_some_and(Entry::is_dirty))
            .unwrap_or(false)
    }

    fn hash(&self, addr: u32) -> usize {
        // Fibonacci hashing over the 8-byte-aligned address.
        ((addr >> 3).wrapping_mul(0x9E37_79B9) as usize) & (self.table.len() - 1)
    }

    fn probe(&self, addr: u32) -> Option<usize> {
        let mut i = self.hash(addr);
        for _ in 0..self.table.len() {
            match &self.table[i] {
                Some(e) if e.main_addr == addr => return Some(i),
                Some(_) => i = (i + 1) & (self.table.len() - 1),
                None => return None,
            }
        }
        None
    }

    fn free_slot(&self, addr: u32) -> Option<usize> {
        let mut i = self.hash(addr);
        for _ in 0..self.table.len() {
            if self.table[i].is_none() {
                return Some(i);
            }
            i = (i + 1) & (self.table.len() - 1);
        }
        None
    }

    /// Ensure `[main_addr, main_addr+len)` is cached; return the local
    /// offset, or `None` when the unit cannot fit (bypass mode).
    ///
    /// Charges the probe (hit) cycles, and on a miss the DMA stall and
    /// insertion overhead, to `core`.
    fn ensure(
        &mut self,
        heap: &mut Heap,
        machine: &mut CellMachine,
        core: CoreId,
        main_addr: u32,
        len: u32,
    ) -> Result<Option<u32>, CacheFault> {
        let hit_cycles = machine.cost_model().cache_hit_cycles as u64;
        machine.advance(core, hit_cycles, OpClass::LocalMemory);

        if let Some(slot) = self.probe(main_addr) {
            self.stats.hits += 1;
            machine.emit(core, TraceEvent::DataCacheHit { addr: main_addr });
            let Some(e) = self.table[slot].as_ref() else {
                debug_assert!(false, "probed slot {slot} has no entry");
                return Err(CacheFault::Internal("probed slot has no entry"));
            };
            return Ok(Some(e.local_off));
        }
        self.stats.misses += 1;
        machine.emit(
            core,
            TraceEvent::DataCacheMiss {
                addr: main_addr,
                bytes: len,
            },
        );

        let alen = align8(len);
        if alen > self.capacity {
            self.stats.bypasses += 1;
            machine.emit(
                core,
                TraceEvent::DataCacheBypass {
                    addr: main_addr,
                    bytes: len,
                },
            );
            return Ok(None);
        }

        // Make room: purge on region overflow or table saturation.
        if self.bump + alen > self.capacity || self.entries >= self.max_entries {
            self.purge(heap, machine, core)?;
        }

        // Fetch the unit. A fault-exhausted transfer surfaces as a typed
        // `CacheFault` before any cache state is mutated.
        machine.dma_tagged(core, len, DmaTag::DataCacheFill)?;
        let dst = self.bump as usize;
        heap.copy_to(main_addr, &mut self.local[dst..dst + len as usize])?;
        self.stats.bytes_fetched += len as u64;

        let Some(slot) = self.free_slot(main_addr) else {
            debug_assert!(false, "purge guarantees a free slot");
            return Err(CacheFault::Internal("no free slot after purge"));
        };
        self.table[slot] = Some(Entry {
            main_addr,
            local_off: self.bump,
            len,
            dirty_lo: u32::MAX,
            dirty_hi: 0,
        });
        self.entries += 1;
        let off = self.bump;
        self.bump += alen;
        machine.advance(core, INSERT_CYCLES, OpClass::LocalMemory);
        Ok(Some(off))
    }

    /// Read an untagged slot from offset `off` inside the unit
    /// `[unit_addr, unit_addr+unit_len)`. This is the interpreter's hot
    /// path; `ty` selects the transfer width only.
    #[allow(clippy::too_many_arguments)]
    pub fn read_slot(
        &mut self,
        heap: &mut Heap,
        machine: &mut CellMachine,
        core: CoreId,
        unit_addr: u32,
        unit_len: u32,
        off: u32,
        ty: Ty,
    ) -> Result<Slot, CacheFault> {
        match self.ensure(heap, machine, core, unit_addr, unit_len)? {
            Some(local_off) => Ok(codec::read_slot(
                &self.local,
                (local_off + off) as usize,
                ty,
            )),
            None => {
                // Bypass: DMA just the touched line, read through.
                machine.dma_tagged(core, ty.field_size(), DmaTag::Bypass)?;
                Ok(heap.read_typed_slot(unit_addr + off, ty))
            }
        }
    }

    /// Write an untagged slot at offset `off` inside the unit, marking
    /// the dirty span.
    #[allow(clippy::too_many_arguments)]
    pub fn write_slot(
        &mut self,
        heap: &mut Heap,
        machine: &mut CellMachine,
        core: CoreId,
        unit_addr: u32,
        unit_len: u32,
        off: u32,
        ty: Ty,
        s: Slot,
    ) -> Result<(), CacheFault> {
        match self.ensure(heap, machine, core, unit_addr, unit_len)? {
            Some(local_off) => {
                codec::write_slot(&mut self.local, (local_off + off) as usize, ty, s);
                let Some(e) = self.probe(unit_addr).and_then(|i| self.table[i].as_mut()) else {
                    debug_assert!(false, "unit vanished right after ensure");
                    return Err(CacheFault::Internal("unit vanished after ensure"));
                };
                e.dirty_lo = e.dirty_lo.min(off);
                e.dirty_hi = e.dirty_hi.max(off + ty.field_size());
                Ok(())
            }
            None => {
                machine.dma_tagged(core, ty.field_size(), DmaTag::Bypass)?;
                heap.write_typed_slot(unit_addr + off, ty, s);
                Ok(())
            }
        }
    }

    /// Read a tagged value (API-boundary convenience over [`read_slot`]).
    ///
    /// [`read_slot`]: DataCache::read_slot
    #[allow(clippy::too_many_arguments)]
    pub fn read(
        &mut self,
        heap: &mut Heap,
        machine: &mut CellMachine,
        core: CoreId,
        unit_addr: u32,
        unit_len: u32,
        off: u32,
        ty: Ty,
    ) -> Result<Value, CacheFault> {
        self.read_slot(heap, machine, core, unit_addr, unit_len, off, ty)
            .map(|s| s.to_value(ty.kind()))
    }

    /// Write a tagged value (API-boundary convenience over
    /// [`write_slot`]).
    ///
    /// [`write_slot`]: DataCache::write_slot
    #[allow(clippy::too_many_arguments)]
    pub fn write(
        &mut self,
        heap: &mut Heap,
        machine: &mut CellMachine,
        core: CoreId,
        unit_addr: u32,
        unit_len: u32,
        off: u32,
        ty: Ty,
        v: Value,
    ) -> Result<(), CacheFault> {
        self.write_slot(
            heap,
            machine,
            core,
            unit_addr,
            unit_len,
            off,
            ty,
            Slot::from_value(v),
        )
    }

    /// Write all dirty spans back to main memory (release barrier /
    /// pre-GC flush). Cached copies remain resident but clean.
    pub fn write_back_dirty(
        &mut self,
        heap: &mut Heap,
        machine: &mut CellMachine,
        core: CoreId,
    ) -> Result<(), CacheFault> {
        for slot in 0..self.table.len() {
            let Some(e) = self.table[slot] else { continue };
            if !e.is_dirty() {
                continue;
            }
            debug_assert!(e.dirty_hi <= e.len, "dirty span exceeds unit");
            let span = e.dirty_hi - e.dirty_lo;
            machine.emit(
                core,
                TraceEvent::DataCacheWriteBack {
                    addr: e.main_addr + e.dirty_lo,
                    bytes: span,
                },
            );
            machine.dma_tagged(core, span, DmaTag::DataCacheWriteBack)?;
            let src_lo = (e.local_off + e.dirty_lo) as usize;
            heap.copy_from(
                e.main_addr + e.dirty_lo,
                &self.local[src_lo..src_lo + span as usize],
            )?;
            self.stats.writebacks += 1;
            self.stats.bytes_written_back += span as u64;
            let Some(e) = self.table[slot].as_mut() else {
                debug_assert!(false, "entry vanished during write-back");
                return Err(CacheFault::Internal("entry vanished during write-back"));
            };
            e.dirty_lo = u32::MAX;
            e.dirty_hi = 0;
        }
        Ok(())
    }

    /// Fail-over salvage: copy every dirty span straight into main memory
    /// and invalidate the cache, charging *no* virtual cycles to any core.
    ///
    /// Used when this cache's SPE died: the dead core cannot execute the
    /// write-back DMA itself (its clock is frozen), so the recovery path
    /// rescues the bytes out-of-band and the caller charges the supervisor
    /// core whatever recovery cost it models. Returns the bytes salvaged.
    pub fn salvage(&mut self, heap: &mut Heap) -> Result<u64, CacheFault> {
        let mut salvaged = 0u64;
        for slot in 0..self.table.len() {
            let Some(e) = self.table[slot] else { continue };
            if !e.is_dirty() {
                continue;
            }
            debug_assert!(e.dirty_hi <= e.len, "dirty span exceeds unit");
            let span = e.dirty_hi - e.dirty_lo;
            let src_lo = (e.local_off + e.dirty_lo) as usize;
            heap.copy_from(
                e.main_addr + e.dirty_lo,
                &self.local[src_lo..src_lo + span as usize],
            )?;
            salvaged += span as u64;
            self.stats.writebacks += 1;
            self.stats.bytes_written_back += span as u64;
        }
        self.table.iter_mut().for_each(|s| *s = None);
        self.entries = 0;
        self.bump = 0;
        self.stats.purges += 1;
        Ok(salvaged)
    }

    /// Full cache state for a snapshot: `(bump, occupied table slots,
    /// local region bytes)`. Each occupied slot is `(slot index,
    /// [main_addr, local_off, len, dirty_lo, dirty_hi])`; slots come out
    /// in index order, so the encoding is deterministic.
    #[allow(clippy::type_complexity)]
    pub fn export_state(&self) -> (u32, Vec<(u32, [u32; 5])>, &[u8]) {
        let slots = self
            .table
            .iter()
            .enumerate()
            .filter_map(|(i, s)| {
                s.as_ref().map(|e| {
                    (
                        i as u32,
                        [e.main_addr, e.local_off, e.len, e.dirty_lo, e.dirty_hi],
                    )
                })
            })
            .collect();
        (self.bump, slots, &self.local)
    }

    /// Restore the state captured by [`DataCache::export_state`]. Fails
    /// if the shape does not match this cache's geometry, so a corrupt
    /// snapshot cannot produce out-of-bounds local offsets.
    pub fn import_state(
        &mut self,
        bump: u32,
        slots: Vec<(u32, [u32; 5])>,
        local: Vec<u8>,
    ) -> Result<(), &'static str> {
        if local.len() != self.local.len() {
            return Err("data-cache region size mismatch");
        }
        if bump > self.capacity || slots.len() > self.max_entries {
            return Err("data-cache allocator state out of range");
        }
        let mut table = vec![None; self.table.len()];
        for &(slot, [main_addr, local_off, len, dirty_lo, dirty_hi]) in &slots {
            let i = slot as usize;
            if i >= table.len() || table[i].is_some() {
                return Err("data-cache table slot invalid");
            }
            if local_off as u64 + align8(len) as u64 > bump as u64 {
                return Err("data-cache unit outside allocated region");
            }
            table[i] = Some(Entry {
                main_addr,
                local_off,
                len,
                dirty_lo,
                dirty_hi,
            });
        }
        self.bump = bump;
        self.entries = slots.len();
        self.table = table;
        self.local = local;
        Ok(())
    }

    /// Purge the cache: write dirty data back, then invalidate
    /// everything (acquire barrier / volatile read / cache full / GC).
    pub fn purge(
        &mut self,
        heap: &mut Heap,
        machine: &mut CellMachine,
        core: CoreId,
    ) -> Result<(), CacheFault> {
        self.write_back_dirty(heap, machine, core)?;
        machine.emit(
            core,
            TraceEvent::DataCachePurge {
                resident_units: self.entries as u32,
            },
        );
        self.table.iter_mut().for_each(|s| *s = None);
        self.entries = 0;
        self.bump = 0;
        self.stats.purges += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hera_cell::CellConfig;
    use hera_isa::{ElemTy, ObjRef, ProgramBuilder};
    use hera_mem::{HeapConfig, ProgramLayout};

    struct Fx {
        heap: Heap,
        machine: CellMachine,
        layout: ProgramLayout,
        class: hera_isa::ClassId,
        field: hera_isa::FieldId,
    }

    fn fx() -> Fx {
        let mut b = ProgramBuilder::new();
        let c = b.add_class("C", None);
        let f = b.add_field(c, "x", Ty::Int);
        b.add_field(c, "y", Ty::Int);
        let p = b.finish().unwrap();
        let layout = ProgramLayout::compute(&p);
        Fx {
            heap: Heap::new(
                HeapConfig {
                    size_bytes: 1 << 20,
                },
                layout.statics.size,
            ),
            machine: CellMachine::new(CellConfig::default()),
            layout,
            class: c,
            field: f,
        }
    }

    const SPE: CoreId = CoreId::Spe(0);

    #[test]
    fn first_access_misses_subsequent_hit() {
        let mut f = fx();
        let r = f.heap.alloc_object(&f.layout, f.class).unwrap();
        let size = f.layout.object_size(f.class);
        let off = f.layout.offset_of(f.field);
        let mut dc = DataCache::new(32 << 10);
        let v = dc
            .read(&mut f.heap, &mut f.machine, SPE, r.0, size, off, Ty::Int)
            .unwrap();
        assert_eq!(v, Value::I32(0));
        assert_eq!(dc.stats.misses, 1);
        dc.read(&mut f.heap, &mut f.machine, SPE, r.0, size, off, Ty::Int)
            .unwrap();
        assert_eq!(dc.stats.hits, 1);
        // Whole object was fetched, not just the field.
        assert_eq!(dc.stats.bytes_fetched, size as u64);
    }

    #[test]
    fn writes_are_local_until_written_back() {
        let mut f = fx();
        let r = f.heap.alloc_object(&f.layout, f.class).unwrap();
        let size = f.layout.object_size(f.class);
        let off = f.layout.offset_of(f.field);
        let mut dc = DataCache::new(32 << 10);
        dc.write(
            &mut f.heap,
            &mut f.machine,
            SPE,
            r.0,
            size,
            off,
            Ty::Int,
            Value::I32(77),
        )
        .unwrap();
        // Main memory still sees the old value (stale is allowed).
        assert_eq!(f.heap.get_field(&f.layout, r, f.field), Value::I32(0));
        assert!(dc.is_dirty(r.0));
        // Local copy sees the new value (read-your-writes).
        let v = dc
            .read(&mut f.heap, &mut f.machine, SPE, r.0, size, off, Ty::Int)
            .unwrap();
        assert_eq!(v, Value::I32(77));
        // Write-back publishes it.
        dc.write_back_dirty(&mut f.heap, &mut f.machine, SPE)
            .unwrap();
        assert_eq!(f.heap.get_field(&f.layout, r, f.field), Value::I32(77));
        assert!(!dc.is_dirty(r.0));
        assert_eq!(dc.stats.writebacks, 1);
    }

    #[test]
    fn stale_reads_until_purge() {
        let mut f = fx();
        let r = f.heap.alloc_object(&f.layout, f.class).unwrap();
        let size = f.layout.object_size(f.class);
        let off = f.layout.offset_of(f.field);
        let mut dc = DataCache::new(32 << 10);
        dc.read(&mut f.heap, &mut f.machine, SPE, r.0, size, off, Ty::Int)
            .unwrap();
        // Another core updates main memory.
        f.heap.put_field(&f.layout, r, f.field, Value::I32(5));
        // The SPE still sees the stale cached value…
        let v = dc
            .read(&mut f.heap, &mut f.machine, SPE, r.0, size, off, Ty::Int)
            .unwrap();
        assert_eq!(v, Value::I32(0));
        // …until an acquire-style purge.
        dc.purge(&mut f.heap, &mut f.machine, SPE).unwrap();
        let v = dc
            .read(&mut f.heap, &mut f.machine, SPE, r.0, size, off, Ty::Int)
            .unwrap();
        assert_eq!(v, Value::I32(5));
    }

    #[test]
    fn purge_writes_dirty_back_first() {
        let mut f = fx();
        let r = f.heap.alloc_object(&f.layout, f.class).unwrap();
        let size = f.layout.object_size(f.class);
        let off = f.layout.offset_of(f.field);
        let mut dc = DataCache::new(32 << 10);
        dc.write(
            &mut f.heap,
            &mut f.machine,
            SPE,
            r.0,
            size,
            off,
            Ty::Int,
            Value::I32(42),
        )
        .unwrap();
        dc.purge(&mut f.heap, &mut f.machine, SPE).unwrap();
        assert_eq!(f.heap.get_field(&f.layout, r, f.field), Value::I32(42));
        assert!(!dc.contains(r.0));
    }

    #[test]
    fn cache_fill_triggers_purge_and_continues() {
        let mut f = fx();
        // 4 KB cache, 1 KB array blocks: five block fetches must purge.
        let arr = f.heap.alloc_array(ElemTy::Byte, 16 << 10).unwrap();
        let mut dc = DataCache::new(4 << 10);
        for block in 0..10u32 {
            let unit = arr.0 + block * 1024;
            dc.read(&mut f.heap, &mut f.machine, SPE, unit, 1024, 0, Ty::Byte)
                .unwrap();
        }
        assert!(dc.stats.purges >= 1);
        assert_eq!(dc.stats.misses, 10);
    }

    #[test]
    fn oversized_units_bypass() {
        let mut f = fx();
        let arr = f.heap.alloc_array(ElemTy::Byte, 1 << 10).unwrap();
        f.heap.array_store(arr, 5, Value::I32(9)).unwrap();
        let mut dc = DataCache::new(256); // smaller than the 1 KB unit
        let v = dc
            .read(
                &mut f.heap,
                &mut f.machine,
                SPE,
                arr.0,
                1032,
                8 + 5,
                Ty::Byte,
            )
            .unwrap();
        assert_eq!(v, Value::I32(9));
        assert_eq!(dc.stats.bypasses, 1);
        // Bypass writes go straight through.
        dc.write(
            &mut f.heap,
            &mut f.machine,
            SPE,
            arr.0,
            1032,
            8 + 6,
            Ty::Byte,
            Value::I32(3),
        )
        .unwrap();
        assert_eq!(f.heap.array_load(arr, 6).unwrap(), Value::I32(3));
    }

    #[test]
    fn dirty_span_limits_writeback_bytes() {
        let mut f = fx();
        let arr = f.heap.alloc_array(ElemTy::Int, 200).unwrap();
        let mut dc = DataCache::new(32 << 10);
        // Touch one element in the middle of a 1 KB block.
        dc.write(
            &mut f.heap,
            &mut f.machine,
            SPE,
            arr.0,
            808,
            8 + 4 * 50,
            Ty::Int,
            Value::I32(1),
        )
        .unwrap();
        dc.write_back_dirty(&mut f.heap, &mut f.machine, SPE)
            .unwrap();
        assert_eq!(dc.stats.bytes_written_back, 4);
    }

    #[test]
    fn salvage_rescues_dirty_bytes_without_charging_cycles() {
        let mut f = fx();
        let r = f.heap.alloc_object(&f.layout, f.class).unwrap();
        let size = f.layout.object_size(f.class);
        let off = f.layout.offset_of(f.field);
        let mut dc = DataCache::new(32 << 10);
        dc.write(
            &mut f.heap,
            &mut f.machine,
            SPE,
            r.0,
            size,
            off,
            Ty::Int,
            Value::I32(42),
        )
        .unwrap();
        let t0 = f.machine.now(SPE);
        let salvaged = dc.salvage(&mut f.heap).unwrap();
        assert_eq!(salvaged, 4);
        // The dead core's clock must not move: salvage is out-of-band.
        assert_eq!(f.machine.now(SPE), t0);
        assert_eq!(f.heap.get_field(&f.layout, r, f.field), Value::I32(42));
        assert!(!dc.contains(r.0));
    }

    #[test]
    fn exhausted_dma_surfaces_cache_fault_not_panic() {
        let mut f = fx();
        f.machine = CellMachine::new(CellConfig {
            faults: hera_cell::FaultPlan::seeded(1)
                .with_mfc_faults(1_000_000, 0, 0)
                .expect("valid"),
            ..CellConfig::default()
        });
        let r = f.heap.alloc_object(&f.layout, f.class).unwrap();
        let size = f.layout.object_size(f.class);
        let off = f.layout.offset_of(f.field);
        let mut dc = DataCache::new(32 << 10);
        let err = dc
            .read(&mut f.heap, &mut f.machine, SPE, r.0, size, off, Ty::Int)
            .unwrap_err();
        assert!(matches!(err, crate::CacheFault::Mfc(_)), "got {err:?}");
        assert_eq!(dc.stats.bytes_fetched, 0, "failed fill must not install");
    }

    #[test]
    fn miss_costs_more_cycles_than_hit() {
        let mut f = fx();
        let r = f.heap.alloc_object(&f.layout, f.class).unwrap();
        let size = f.layout.object_size(f.class);
        let mut dc = DataCache::new(32 << 10);
        let t0 = f.machine.now(SPE);
        dc.read(&mut f.heap, &mut f.machine, SPE, r.0, size, 8, Ty::Int)
            .unwrap();
        let miss_cost = f.machine.now(SPE) - t0;
        let t1 = f.machine.now(SPE);
        dc.read(&mut f.heap, &mut f.machine, SPE, r.0, size, 8, Ty::Int)
            .unwrap();
        let hit_cost = f.machine.now(SPE) - t1;
        assert!(miss_cost > 10 * hit_cost, "{miss_cost} vs {hit_cost}");
        // Misses charge main-memory cycles; hits charge local memory.
        assert!(f.machine.breakdown(SPE).cycles(OpClass::MainMemory) > 0);
        assert!(f.machine.breakdown(SPE).cycles(OpClass::LocalMemory) > 0);
    }

    #[test]
    fn hit_rate_reporting() {
        let mut s = DataCacheStats::default();
        assert_eq!(s.hit_rate(), 0.0);
        s.hits = 3;
        s.misses = 1;
        assert_eq!(s.hit_rate(), 0.75);
    }

    #[test]
    fn many_objects_with_collisions_still_resolve() {
        let mut f = fx();
        let mut refs: Vec<ObjRef> = Vec::new();
        for i in 0..200 {
            let r = f.heap.alloc_object(&f.layout, f.class).unwrap();
            f.heap.put_field(&f.layout, r, f.field, Value::I32(i));
            refs.push(r);
        }
        let size = f.layout.object_size(f.class);
        let off = f.layout.offset_of(f.field);
        let mut dc = DataCache::new(64 << 10);
        for (i, r) in refs.iter().enumerate() {
            let v = dc
                .read(&mut f.heap, &mut f.machine, SPE, r.0, size, off, Ty::Int)
                .unwrap();
            assert_eq!(v, Value::I32(i as i32));
        }
        // Second pass: all hits (64 KB holds 200 × 16-byte objects).
        let before = dc.stats.hits;
        for r in &refs {
            dc.read(&mut f.heap, &mut f.machine, SPE, r.0, size, off, Ty::Int)
                .unwrap();
        }
        assert_eq!(dc.stats.hits - before, 200);
    }
}
