//! Typed failures for the software caches.
//!
//! The caches used to panic on anything unexpected; with fault injection
//! in the machine (hera-faults) the DMA layer is genuinely fallible, and a
//! guest-reachable cache fill or write-back must surface a value the
//! interpreter can turn into a `Trap` rather than tearing down the host.

use hera_cell::MfcFault;
use hera_mem::HeapError;

/// Why a cache operation could not complete.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CacheFault {
    /// The backing heap rejected an address (simulator-internal misuse).
    Heap(HeapError),
    /// The MFC gave up on a DMA transfer after its retry budget.
    Mfc(MfcFault),
    /// A cache invariant did not hold at runtime. Debug builds assert
    /// first; release builds degrade to this typed error.
    Internal(&'static str),
}

impl From<HeapError> for CacheFault {
    fn from(e: HeapError) -> Self {
        CacheFault::Heap(e)
    }
}

impl From<MfcFault> for CacheFault {
    fn from(e: MfcFault) -> Self {
        CacheFault::Mfc(e)
    }
}

impl std::fmt::Display for CacheFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CacheFault::Heap(e) => write!(f, "cache heap access: {e}"),
            CacheFault::Mfc(e) => write!(f, "cache transfer: {e}"),
            CacheFault::Internal(msg) => write!(f, "cache invariant: {msg}"),
        }
    }
}

impl std::error::Error for CacheFault {}
