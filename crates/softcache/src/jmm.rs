//! Java Memory Model coherence actions for the SPE data cache.
//!
//! The software data cache is not coherent: a thread on an SPE may read
//! a stale copy of an object another core has since modified. The JMM
//! allows exactly this *between* synchronisation actions — values may be
//! cached between lock and unlock — so Hera-JVM restores the required
//! happens-before edges at the synchronisation points themselves
//! (§3.2.1):
//!
//! * **acquire** (monitor enter, volatile read): purge the data cache,
//!   so everything published before the matching release is re-fetched;
//! * **release** (monitor exit, volatile write): write all dirty local
//!   modifications back to main memory, publishing them.
//!
//! With those two actions, "any correctly synchronised multi-threaded
//! application will run correctly under Hera-JVM".

use crate::data_cache::DataCache;
use crate::CacheFault;
use hera_cell::{CellMachine, CoreId};
use hera_mem::Heap;
use hera_trace::{BarrierKind, CostClass, TraceEvent};

/// Apply the acquire-side action: purge (write dirty back, invalidate).
///
/// Used before monitor enter completes and before a volatile read.
pub fn acquire_barrier(
    cache: &mut DataCache,
    heap: &mut Heap,
    machine: &mut CellMachine,
    core: CoreId,
) -> Result<(), CacheFault> {
    machine.emit(
        core,
        TraceEvent::JmmBarrier {
            kind: BarrierKind::Acquire,
        },
    );
    let tok = machine.prof_scope_begin(core, CostClass::JmmBarrier);
    let res = cache.purge(heap, machine, core);
    machine.prof_scope_end(core, tok);
    res
}

/// Apply the release-side action: write dirty data back (copies remain
/// cached, clean).
///
/// Used before monitor exit releases and before a volatile write
/// publishes.
pub fn release_barrier(
    cache: &mut DataCache,
    heap: &mut Heap,
    machine: &mut CellMachine,
    core: CoreId,
) -> Result<(), CacheFault> {
    machine.emit(
        core,
        TraceEvent::JmmBarrier {
            kind: BarrierKind::Release,
        },
    );
    let tok = machine.prof_scope_begin(core, CostClass::JmmBarrier);
    let res = cache.write_back_dirty(heap, machine, core);
    machine.prof_scope_end(core, tok);
    res
}

#[cfg(test)]
mod tests {
    use super::*;
    use hera_cell::CellConfig;
    use hera_isa::{ProgramBuilder, Ty, Value};
    use hera_mem::{HeapConfig, ProgramLayout};

    const SPE0: CoreId = CoreId::Spe(0);
    const SPE1: CoreId = CoreId::Spe(1);

    /// Two SPE threads with private caches hand a value across a
    /// release/acquire pair: the reader must observe the writer's store.
    #[test]
    fn release_acquire_transfers_data() {
        let mut b = ProgramBuilder::new();
        let c = b.add_class("Box", None);
        let f = b.add_field(c, "v", Ty::Int);
        let p = b.finish().unwrap();
        let layout = ProgramLayout::compute(&p);
        let mut heap = Heap::new(
            HeapConfig {
                size_bytes: 1 << 20,
            },
            layout.statics.size,
        );
        let mut machine = CellMachine::new(CellConfig::default());
        let r = heap.alloc_object(&layout, c).unwrap();
        let size = layout.object_size(c);
        let off = layout.offset_of(f);

        let mut writer = DataCache::new(16 << 10);
        let mut reader = DataCache::new(16 << 10);

        // Reader caches the stale zero first.
        let v = reader
            .read(&mut heap, &mut machine, SPE1, r.0, size, off, Ty::Int)
            .unwrap();
        assert_eq!(v, Value::I32(0));

        // Writer stores locally, then releases.
        writer
            .write(
                &mut heap,
                &mut machine,
                SPE0,
                r.0,
                size,
                off,
                Ty::Int,
                Value::I32(123),
            )
            .unwrap();
        release_barrier(&mut writer, &mut heap, &mut machine, SPE0).unwrap();

        // Without an acquire, the reader may still see the stale value.
        let stale = reader
            .read(&mut heap, &mut machine, SPE1, r.0, size, off, Ty::Int)
            .unwrap();
        assert_eq!(stale, Value::I32(0));

        // After the acquire, it must see 123.
        acquire_barrier(&mut reader, &mut heap, &mut machine, SPE1).unwrap();
        let fresh = reader
            .read(&mut heap, &mut machine, SPE1, r.0, size, off, Ty::Int)
            .unwrap();
        assert_eq!(fresh, Value::I32(123));
    }

    /// Release must not lose writes made by the other side to *other*
    /// fields when the spans do not overlap.
    #[test]
    fn disjoint_field_writes_survive_release() {
        let mut b = ProgramBuilder::new();
        let c = b.add_class("Pair", None);
        let fa = b.add_field(c, "a", Ty::Int);
        let fb = b.add_field(c, "b", Ty::Int);
        let p = b.finish().unwrap();
        let layout = ProgramLayout::compute(&p);
        let mut heap = Heap::new(
            HeapConfig {
                size_bytes: 1 << 20,
            },
            layout.statics.size,
        );
        let mut machine = CellMachine::new(CellConfig::default());
        let r = heap.alloc_object(&layout, c).unwrap();
        let size = layout.object_size(c);

        let mut spe0 = DataCache::new(16 << 10);
        // SPE0 caches the object and writes field `a`.
        spe0.write(
            &mut heap,
            &mut machine,
            SPE0,
            r.0,
            size,
            layout.offset_of(fa),
            Ty::Int,
            Value::I32(1),
        )
        .unwrap();
        // Meanwhile the PPE writes field `b` directly to main memory.
        heap.put_field(&layout, r, fb, Value::I32(2));
        // SPE0 releases: only its dirty span (field a) is written back.
        release_barrier(&mut spe0, &mut heap, &mut machine, SPE0).unwrap();
        assert_eq!(heap.get_field(&layout, r, fa), Value::I32(1));
        assert_eq!(heap.get_field(&layout, r, fb), Value::I32(2));
    }
}
