//! # hera-softcache — the SPE software caches
//!
//! SPE cores cannot address main memory: every byte must be DMAed into
//! the 256 KB local store first. Hera-JVM therefore interposes two
//! software caches on the SPE execution path (paper §3.2.1–§3.2.2):
//!
//! * the [`data_cache::DataCache`] caches **objects whole** (their size
//!   discovered from bytecode-level type information) and **arrays in
//!   blocks of up to 1 KB** of neighbouring elements, with bump-pointer
//!   allocation, a local-memory-resident hashtable for lookup, and a
//!   flush-everything policy when full;
//! * the [`code_cache::CodeCache`] caches **methods whole**, found via a
//!   permanently resident 2 KB class table-of-contents (TOC) pointing at
//!   per-class type information blocks (TIBs), themselves cached on
//!   demand — the double dereference of Figure 3. The lookup repeats on
//!   return, because the callee may have purged the caller.
//!
//! Coherence follows the Java Memory Model ([`jmm`]): the data cache is
//! purged before lock acquisition and volatile reads, and dirty data is
//! written back before lock release and volatile writes. Between
//! synchronisation actions, stale reads are *allowed* — and this
//! implementation really does serve stale bytes from its local copy,
//! which is what makes the JMM conformance tests in `hera-core`
//! meaningful.

pub mod code_cache;
pub mod data_cache;
pub mod fault;
pub mod jmm;

pub use code_cache::{CodeCache, CodeCacheStats};
pub use data_cache::{DataCache, DataCacheStats};
pub use fault::CacheFault;
