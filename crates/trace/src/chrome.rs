//! Chrome trace-event JSON exporter.
//!
//! Emits the "JSON object format" understood by Perfetto and
//! chrome://tracing: a `traceEvents` array of `B`/`E` duration events (method
//! frames, GC), `i` instants (everything else) and `M` metadata records
//! naming one track per core lane.  Timestamps are the simulator's virtual
//! cycles, written as microseconds — the absolute unit is meaningless for a
//! simulator, only relative spacing matters.
//!
//! JSON is hand-rolled (the crate has zero dependencies); only the lane
//! names and resolver-produced method names need escaping.

use crate::event::{TraceEvent, TraceKindArgs};
use crate::sink::TraceSink;
use crate::span::{FleetSpan, FlowArrow};
use std::fmt::Write as _;

/// Export `sink` with methods named `m<id>`.
pub fn chrome_trace_json(sink: &TraceSink) -> String {
    chrome_trace_json_with(sink, &|m| format!("m{m}"))
}

/// Export `sink`, mapping method ids to display names via `method_name`.
pub fn chrome_trace_json_with(sink: &TraceSink, method_name: &dyn Fn(u32) -> String) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
    let mut first = true;
    let push = |out: &mut String, first: &mut bool, ev: &str| {
        if !*first {
            out.push(',');
        }
        *first = false;
        out.push_str(ev);
    };

    // One named track per lane.  pid 1 groups everything under one process.
    for (tid, lane) in sink.lanes().iter().enumerate() {
        push(
            &mut out,
            &mut first,
            &format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\"args\":{{\"name\":{}}}}}",
                tid,
                json_string(&lane.name)
            ),
        );
    }

    for (tid, lane) in sink.lanes().iter().enumerate() {
        // Per-lane stack of open B events so the exported stream is always
        // balanced: a return with no matching open frame (the method was
        // entered before tracing looked, or on another lane after a
        // migration) degrades to an instant, and frames still open at the
        // end of the lane are closed at the lane's last timestamp.
        let mut open: Vec<String> = Vec::new();
        let mut last_ts = 0u64;
        for te in &lane.events {
            last_ts = te.at;
            match te.event {
                TraceEvent::MethodInvoke { method } => {
                    let name = json_string(&method_name(method));
                    push(
                        &mut out,
                        &mut first,
                        &format!(
                            "{{\"name\":{name},\"cat\":\"method\",\"ph\":\"B\",\"pid\":1,\"tid\":{tid},\"ts\":{}}}",
                            te.at
                        ),
                    );
                    open.push(name);
                }
                TraceEvent::MethodReturn { method } => {
                    if open.pop().is_some() {
                        push(
                            &mut out,
                            &mut first,
                            &format!("{{\"ph\":\"E\",\"pid\":1,\"tid\":{tid},\"ts\":{}}}", te.at),
                        );
                    } else {
                        let name = json_string(&format!("return {}", method_name(method)));
                        push(
                            &mut out,
                            &mut first,
                            &format!(
                                "{{\"name\":{name},\"cat\":\"method\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":{tid},\"ts\":{}}}",
                                te.at
                            ),
                        );
                    }
                }
                TraceEvent::GcBegin { requester_lane } => {
                    push(
                        &mut out,
                        &mut first,
                        &format!(
                            "{{\"name\":\"GC\",\"cat\":\"gc\",\"ph\":\"B\",\"pid\":1,\"tid\":{tid},\"ts\":{},\"args\":{{\"requester_lane\":{requester_lane}}}}}",
                            te.at
                        ),
                    );
                    open.push(String::from("\"GC\""));
                }
                TraceEvent::GcEnd {
                    freed_objects,
                    freed_bytes,
                } => {
                    if open.pop().is_some() {
                        push(
                            &mut out,
                            &mut first,
                            &format!(
                                "{{\"ph\":\"E\",\"pid\":1,\"tid\":{tid},\"ts\":{},\"args\":{{\"freed_objects\":{freed_objects},\"freed_bytes\":{freed_bytes}}}}}",
                                te.at
                            ),
                        );
                    } else {
                        push(
                            &mut out,
                            &mut first,
                            &format!(
                                "{{\"name\":\"gc.end\",\"cat\":\"gc\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":{tid},\"ts\":{}}}",
                                te.at
                            ),
                        );
                    }
                }
                ref ev => {
                    let TraceKindArgs { cat, args } = ev.kind_args();
                    push(
                        &mut out,
                        &mut first,
                        &format!(
                            "{{\"name\":\"{}\",\"cat\":\"{cat}\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":{tid},\"ts\":{}{}}}",
                            ev.kind_name(),
                            te.at,
                            if args.is_empty() {
                                String::new()
                            } else {
                                format!(",\"args\":{{{args}}}")
                            }
                        ),
                    );
                }
            }
        }
        // Close any frames still open so Perfetto sees a balanced stream.
        while open.pop().is_some() {
            push(
                &mut out,
                &mut first,
                &format!("{{\"ph\":\"E\",\"pid\":1,\"tid\":{tid},\"ts\":{last_ts}}}"),
            );
        }
    }

    out.push_str("]}");
    out
}

/// Export a fleet trace: one named track per entry of `tracks`, spans as
/// `X` complete events, and causal arrows as `s`/`f` flow-event pairs
/// (the `f` carries `bp:"e"` so the arrow binds to the enclosing slice).
///
/// Events are emitted grouped by track, each track in non-decreasing
/// timestamp order with ties broken by input order — so the export is a
/// pure function of its arguments and per-track timestamps are monotone,
/// which the integration tests assert. Timestamps are fleet-virtual
/// cycles written as microseconds, same convention as the VM exporter.
pub fn fleet_trace_json(tracks: &[String], spans: &[FleetSpan], flows: &[FlowArrow]) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
    let mut first = true;
    let push = |out: &mut String, first: &mut bool, ev: &str| {
        if !*first {
            out.push(',');
        }
        *first = false;
        out.push_str(ev);
    };

    for (tid, name) in tracks.iter().enumerate() {
        push(
            &mut out,
            &mut first,
            &format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\"args\":{{\"name\":{}}}}}",
                tid,
                json_string(name)
            ),
        );
    }

    // Bucket every event onto its track, then sort each track by
    // (timestamp, arrival order). `seq` makes the sort total.
    let mut lanes: Vec<Vec<(u64, u64, String)>> = vec![Vec::new(); tracks.len()];
    let mut seq = 0u64;
    for s in spans {
        let mut args = format!("\"span\":{},\"parent\":{}", s.id, s.parent);
        for (k, v) in &s.args {
            let _ = write!(args, ",\"{k}\":{v}");
        }
        let body = format!(
            "{{\"name\":{},\"cat\":\"{}\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{},\"args\":{{{args}}}}}",
            json_string(&s.name),
            s.cat,
            s.track,
            s.begin,
            s.dur
        );
        lanes[s.track as usize].push((s.begin, seq, body));
        seq += 1;
    }
    for f in flows {
        let begin = format!(
            "{{\"name\":\"{}\",\"cat\":\"flow\",\"ph\":\"s\",\"id\":{},\"pid\":1,\"tid\":{},\"ts\":{}}}",
            f.kind.name(),
            f.id,
            f.from_track,
            f.from_ts
        );
        lanes[f.from_track as usize].push((f.from_ts, seq, begin));
        seq += 1;
        let end = format!(
            "{{\"name\":\"{}\",\"cat\":\"flow\",\"ph\":\"f\",\"bp\":\"e\",\"id\":{},\"pid\":1,\"tid\":{},\"ts\":{}}}",
            f.kind.name(),
            f.id,
            f.to_track,
            f.to_ts
        );
        lanes[f.to_track as usize].push((f.to_ts, seq, end));
        seq += 1;
    }
    for lane in &mut lanes {
        lane.sort_by_key(|&(ts, seq, _)| (ts, seq));
        for (_, _, body) in lane.iter() {
            push(&mut out, &mut first, body);
        }
    }

    out.push_str("]}");
    out
}

/// Escape `s` as a JSON string literal (including the quotes).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_json_strings() {
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_string("x\ny"), "\"x\\ny\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn empty_sink_exports_valid_shell() {
        let s = TraceSink::disabled();
        let j = chrome_trace_json(&s);
        assert_eq!(j, "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[]}");
    }

    #[test]
    fn unbalanced_frames_are_repaired() {
        let mut s = TraceSink::with_lanes(["ppe"]);
        // Return with no open frame, then an invoke never returned.
        s.emit(0, 5, TraceEvent::MethodReturn { method: 1 });
        s.emit(0, 9, TraceEvent::MethodInvoke { method: 2 });
        let j = chrome_trace_json(&s);
        let b = j.matches("\"ph\":\"B\"").count();
        let e = j.matches("\"ph\":\"E\"").count();
        assert_eq!(b, e, "B/E must balance: {j}");
        assert!(j.contains("\"ph\":\"i\""), "orphan return becomes instant");
    }

    #[test]
    fn fleet_export_orders_each_track_by_timestamp() {
        use crate::span::FlowKind;
        let tracks = vec![String::from("front-end"), String::from("m0")];
        // Spans deliberately out of time order on track 1.
        let spans = vec![
            FleetSpan {
                track: 1,
                name: String::from("service req0"),
                cat: "service",
                begin: 500,
                dur: 100,
                id: 2,
                parent: 1,
                args: vec![("machine", 0)],
            },
            FleetSpan {
                track: 1,
                name: String::from("queue req0"),
                cat: "queue",
                begin: 300,
                dur: 200,
                id: 3,
                parent: 1,
                args: vec![],
            },
            FleetSpan {
                track: 0,
                name: String::from("req0"),
                cat: "request",
                begin: 100,
                dur: 500,
                id: 1,
                parent: 0,
                args: vec![("class", 2)],
            },
        ];
        let flows = vec![FlowArrow {
            kind: FlowKind::Hedge,
            id: 7,
            from_track: 0,
            from_ts: 400,
            to_track: 1,
            to_ts: 450,
        }];
        let j = fleet_trace_json(&tracks, &spans, &flows);
        assert_eq!(j.matches("\"ph\":\"M\"").count(), 2);
        assert_eq!(j.matches("\"ph\":\"X\"").count(), 3);
        assert_eq!(j.matches("\"ph\":\"s\"").count(), 1);
        assert_eq!(j.matches("\"ph\":\"f\"").count(), 1);
        assert!(j.contains("\"bp\":\"e\""), "flow end must bind enclosing");
        let queue = j.find("queue req0").unwrap();
        let service = j.find("service req0").unwrap();
        assert!(queue < service, "track 1 must be sorted by ts: {j}");
        assert!(j.contains("\"span\":2,\"parent\":1,\"machine\":0"));
        assert_eq!(fleet_trace_json(&tracks, &spans, &flows), j);
    }

    #[test]
    fn one_metadata_record_per_lane() {
        let mut s = TraceSink::with_lanes(["ppe", "spe0", "spe1"]);
        s.emit(2, 3, TraceEvent::EibStall { cycles: 7 });
        let j = chrome_trace_json(&s);
        assert_eq!(j.matches("\"ph\":\"M\"").count(), 3);
        assert!(j.contains("\"name\":\"eib.stall\""));
        assert!(j.contains("\"cycles\":7"));
    }
}
