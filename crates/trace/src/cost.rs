//! The shared cost-class vocabulary used by the profiler (`hera-prof`).
//!
//! Every virtual cycle the simulator charges is attributed to exactly one
//! [`CostClass`].  The vocabulary lives here — at the bottom of the
//! dependency graph, next to the [`TraceEvent`](crate::TraceEvent)
//! vocabulary — so that `hera-cell` (which charges cycles), `hera-core`
//! (which scopes them) and `hera-prof` (which reports them) agree on the
//! same set of classes without depending on each other.
//!
//! Attribution follows an *outermost-non-compute-wins* scope discipline:
//! cycles default to [`CostClass::Compute`], and the runtime opens a scope
//! (JMM barrier, GC pause, migration, …) around the code that charges them.
//! The one exception is fault retry/backoff time, which is billed directly
//! to [`CostClass::FaultRetry`] regardless of any enclosing scope, so chaos
//! overhead never hides inside another class.

/// Why a batch of virtual cycles was spent.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
#[repr(usize)]
pub enum CostClass {
    /// Plain guest execution: interpreter/JIT ops, call/return overhead,
    /// thread-switch cost, and anything not claimed by another class.
    Compute = 0,
    /// DMA transfer time not attributable to a specific cache (bypass
    /// transfers, raw MFC traffic).
    DmaStall,
    /// Software data-cache line fills (DMA in).
    DataCacheFill,
    /// Software data-cache write-backs (DMA out).
    DataCacheWriteBack,
    /// Code-cache loads (method bodies DMA'd into the local store).
    CodeCacheFill,
    /// Java-memory-model acquire/release barrier work: purges, dirty-line
    /// flushes, and volatile sync stalls.
    JmmBarrier,
    /// Waiting for a contended monitor (PPE round-trips and timed waits).
    MonitorContention,
    /// Thread migration between core types: state packaging/transfer and
    /// fail-over draining.
    Migration,
    /// Stop-the-world garbage-collection pauses.
    GcPause,
    /// MFC fault retries, exponential backoff, and watchdog expiries.
    FaultRetry,
    /// Syscall proxying and JNI bridging to the PPE.
    Syscall,
}

impl CostClass {
    /// Number of classes (the length of [`CostVec`]).
    pub const COUNT: usize = 11;

    /// Every class, in index order.
    pub const ALL: [CostClass; CostClass::COUNT] = [
        CostClass::Compute,
        CostClass::DmaStall,
        CostClass::DataCacheFill,
        CostClass::DataCacheWriteBack,
        CostClass::CodeCacheFill,
        CostClass::JmmBarrier,
        CostClass::MonitorContention,
        CostClass::Migration,
        CostClass::GcPause,
        CostClass::FaultRetry,
        CostClass::Syscall,
    ];

    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable short label used in reports and collapsed-stack annotations.
    pub fn label(self) -> &'static str {
        match self {
            CostClass::Compute => "compute",
            CostClass::DmaStall => "dma-stall",
            CostClass::DataCacheFill => "dcache-fill",
            CostClass::DataCacheWriteBack => "dcache-writeback",
            CostClass::CodeCacheFill => "ccache-fill",
            CostClass::JmmBarrier => "jmm-barrier",
            CostClass::MonitorContention => "monitor",
            CostClass::Migration => "migration",
            CostClass::GcPause => "gc-pause",
            CostClass::FaultRetry => "fault-retry",
            CostClass::Syscall => "syscall",
        }
    }
}

/// A fixed-size vector of cycles, one slot per [`CostClass`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct CostVec(pub [u64; CostClass::COUNT]);

impl CostVec {
    pub const ZERO: CostVec = CostVec([0; CostClass::COUNT]);

    pub fn add(&mut self, class: CostClass, cycles: u64) {
        self.0[class.index()] += cycles;
    }

    pub fn get(&self, class: CostClass) -> u64 {
        self.0[class.index()]
    }

    /// Sum across all classes.
    pub fn total(&self) -> u64 {
        self.0.iter().sum()
    }

    pub fn is_zero(&self) -> bool {
        self.0.iter().all(|&c| c == 0)
    }

    /// Element-wise add.
    pub fn merge(&mut self, other: &CostVec) {
        for (d, s) in self.0.iter_mut().zip(other.0.iter()) {
            *d += s;
        }
    }

    /// `(class, cycles)` pairs in index order.
    pub fn iter(&self) -> impl Iterator<Item = (CostClass, u64)> + '_ {
        CostClass::ALL.iter().map(move |&c| (c, self.get(c)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_covers_every_index_in_order() {
        for (i, c) in CostClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
        assert_eq!(CostClass::ALL.len(), CostClass::COUNT);
    }

    #[test]
    fn labels_are_unique() {
        for a in CostClass::ALL {
            for b in CostClass::ALL {
                if a != b {
                    assert_ne!(a.label(), b.label());
                }
            }
        }
    }

    #[test]
    fn costvec_arithmetic() {
        let mut v = CostVec::ZERO;
        assert!(v.is_zero());
        v.add(CostClass::Compute, 10);
        v.add(CostClass::GcPause, 5);
        assert_eq!(v.get(CostClass::Compute), 10);
        assert_eq!(v.total(), 15);
        let mut w = CostVec::ZERO;
        w.add(CostClass::Compute, 1);
        w.merge(&v);
        assert_eq!(w.get(CostClass::Compute), 11);
        assert_eq!(w.total(), 16);
        assert_eq!(w.iter().map(|(_, c)| c).sum::<u64>(), 16);
    }
}
