//! Typed trace events.
//!
//! Every event is `Copy` and carries only plain integers: the simulator maps
//! its own ids (method indices, object handles, native ids, core indices)
//! onto `u32` lanes/ids before emitting.  Exporters that want symbolic names
//! accept a resolver closure (see [`crate::chrome_trace_json_with`]).

/// Which of the paper's three migration paths moved a thread between cores.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum MigrationKind {
    /// `@RunOnSpe`/`@RunOnPpe`-style annotation migration: a marker frame is
    /// pushed and the thread returns to its origin core when it pops.
    Annotation,
    /// Monitor-driven one-way migration (the thread stays on the target
    /// core after the monitor section; no marker frame).
    Monitored,
    /// Return over a migration marker frame: the thread travels back to the
    /// core recorded in the marker.
    MarkerReturn,
    /// Fail-over drain: the scheduler repackaged the thread off a dead core
    /// by reusing the migration machinery (frames rehomed to the PPE).
    Failover,
}

impl MigrationKind {
    pub fn label(self) -> &'static str {
        match self {
            MigrationKind::Annotation => "annotation",
            MigrationKind::Monitored => "monitored",
            MigrationKind::MarkerReturn => "marker-return",
            MigrationKind::Failover => "failover",
        }
    }
}

/// Which injected fault a fault/retry/watchdog event refers to.
///
/// Mirrors the fault kinds of the `hera-faults` crate without depending on
/// it (the trace crate stays dependency-free and simulator-agnostic).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum InjectedFault {
    /// Transient MFC transfer failure.
    MfcTransfer,
    /// EIB grant timeout.
    EibGrantTimeout,
    /// Local-store corruption detected at DMA-in (checksum mismatch).
    LsCorruption,
    /// Syscall-proxy watchdog deadline missed.
    ProxyTimeout,
    /// Migration watchdog deadline missed.
    MigrationTimeout,
}

impl InjectedFault {
    pub fn label(self) -> &'static str {
        match self {
            InjectedFault::MfcTransfer => "mfc-transfer",
            InjectedFault::EibGrantTimeout => "eib-grant-timeout",
            InjectedFault::LsCorruption => "ls-corruption",
            InjectedFault::ProxyTimeout => "proxy-timeout",
            InjectedFault::MigrationTimeout => "migration-timeout",
        }
    }
}

/// JMM barrier flavour (acquire = purge cached lines, release = write back
/// dirty lines).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum BarrierKind {
    Acquire,
    Release,
}

impl BarrierKind {
    pub fn label(self) -> &'static str {
        match self {
            BarrierKind::Acquire => "acquire",
            BarrierKind::Release => "release",
        }
    }
}

/// Why a DMA transfer crossed the EIB.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum DmaTag {
    /// Software data-cache miss fill.
    DataCacheFill,
    /// Software data-cache dirty-span write-back.
    DataCacheWriteBack,
    /// Code-cache TIB/method/bypass load.
    CodeCacheLoad,
    /// Uncached (bypass) field access straight to main memory.
    Bypass,
    /// Anything else (untagged legacy call sites).
    Other,
}

impl DmaTag {
    pub fn label(self) -> &'static str {
        match self {
            DmaTag::DataCacheFill => "dcache-fill",
            DmaTag::DataCacheWriteBack => "dcache-writeback",
            DmaTag::CodeCacheLoad => "ccache-load",
            DmaTag::Bypass => "bypass",
            DmaTag::Other => "other",
        }
    }
}

/// Stop-the-world collector phase.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum GcPhase {
    Mark,
    Sweep,
}

impl GcPhase {
    pub fn label(self) -> &'static str {
        match self {
            GcPhase::Mark => "mark",
            GcPhase::Sweep => "sweep",
        }
    }
}

/// One timestamped observation from the simulator.
///
/// Variants mirror the instrumentation points named in the design doc:
/// interpreter frames, the three migration paths, MFC DMA and EIB stalls,
/// software data/code-cache traffic, JMM barriers, monitors, native-call
/// bridging, GC phases and scheduler context switches.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum TraceEvent {
    /// A new interpreter frame was pushed for `method`.
    MethodInvoke { method: u32 },
    /// The frame for `method` returned.
    MethodReturn { method: u32 },
    /// Thread `thread` leaves this lane for `to_lane`.
    MigrateOut {
        kind: MigrationKind,
        to_lane: u32,
        thread: u32,
    },
    /// Thread `thread` arrives on this lane from `from_lane`.
    MigrateIn {
        kind: MigrationKind,
        from_lane: u32,
        thread: u32,
    },
    /// An MFC DMA transfer of `bytes` issued from this lane.
    Dma {
        tag: DmaTag,
        bytes: u32,
        queue_cycles: u64,
        transfer_cycles: u64,
    },
    /// The EIB arbitration queued this lane's transfer for `cycles`.
    EibStall { cycles: u64 },
    /// Software data-cache hit at `addr`.
    DataCacheHit { addr: u32 },
    /// Software data-cache miss at `addr`; `bytes` fetched from main memory.
    DataCacheMiss { addr: u32, bytes: u32 },
    /// Dirty span of `bytes` written back from the software data cache.
    DataCacheWriteBack { addr: u32, bytes: u32 },
    /// The software data cache was invalidated (`resident_units` entries).
    DataCachePurge { resident_units: u32 },
    /// Uncached access of `bytes` at `addr` that bypassed the data cache.
    DataCacheBypass { addr: u32, bytes: u32 },
    /// Code cache already held the compiled body for `method`.
    CodeCacheHit { method: u32 },
    /// Code cache loaded `bytes` of code for `method`.
    CodeCacheMiss { method: u32, bytes: u32 },
    /// TIB for `class` was already cached.
    CodeCacheTibHit { class: u32 },
    /// TIB for `class` loaded (`bytes`).
    CodeCacheTibMiss { class: u32, bytes: u32 },
    /// Code cache evicted everything (`bytes_in_use` before the purge).
    CodeCachePurge { bytes_in_use: u32 },
    /// A Java-memory-model barrier ran on this lane.
    JmmBarrier { kind: BarrierKind },
    /// Monitor on `obj` acquired without contention.
    MonitorAcquire { obj: u32 },
    /// Monitor on `obj` was contended (acquire blocked or queued).
    MonitorContended { obj: u32 },
    /// Monitor on `obj` released.
    MonitorRelease { obj: u32 },
    /// SPE proxied fast syscall `native` to the PPE (thread stays put).
    SyscallProxy { native: u32 },
    /// SPE bridged JNI-kind native `native` via a round-trip migration.
    JniBridge { native: u32 },
    /// Stop-the-world collection begins; requested from `requester_lane`.
    GcBegin { requester_lane: u32 },
    /// A collector phase finished, having visited `items` objects /
    /// `bytes` bytes.
    GcPhaseEnd {
        phase: GcPhase,
        items: u64,
        bytes: u64,
    },
    /// Stop-the-world collection ends.
    GcEnd {
        freed_objects: u64,
        freed_bytes: u64,
    },
    /// The scheduler switched this lane to run `thread`.
    ThreadSwitch { thread: u32 },
    /// An injected fault fired on this lane (DMA attempt `attempt`).
    MfcFault { kind: InjectedFault, attempt: u32 },
    /// The MFC re-queued a failed transfer after `backoff_cycles` of
    /// exponential backoff (retry number `attempt`, 1-based).
    MfcRetry { attempt: u32, backoff_cycles: u64 },
    /// A proxy/migration watchdog deadline expired; `cycles` were burned
    /// waiting before the operation was retried.
    WatchdogTimeout { kind: InjectedFault, cycles: u64 },
    /// This SPE lane died at its current virtual cycle and is blacklisted.
    SpeFailed { spe: u32 },
    /// Fail-over drained `threads` resident threads off this dead lane.
    SpeDrained { threads: u32 },
    /// A whole-VM checkpoint was written at a scheduler safepoint.  `bytes`
    /// is the size of the machine-state section of the snapshot (the part
    /// whose write cost is charged as PPE stall time).
    Checkpoint { seq: u32, bytes: u32 },
    /// The run was resumed from checkpoint `seq` of an earlier run.
    Restore { seq: u32 },
}

/// Export metadata for an event: its category plus the body of a JSON
/// `args` object (no braces), e.g. `"bytes":128,"tag":"dcache-fill"`.
pub struct TraceKindArgs {
    pub cat: &'static str,
    pub args: String,
}

impl TraceEvent {
    /// Stable short name for summaries and export `name` fields.
    pub fn kind_name(&self) -> &'static str {
        match self {
            TraceEvent::MethodInvoke { .. } => "method.invoke",
            TraceEvent::MethodReturn { .. } => "method.return",
            TraceEvent::MigrateOut { .. } => "migrate.out",
            TraceEvent::MigrateIn { .. } => "migrate.in",
            TraceEvent::Dma { .. } => "dma",
            TraceEvent::EibStall { .. } => "eib.stall",
            TraceEvent::DataCacheHit { .. } => "dcache.hit",
            TraceEvent::DataCacheMiss { .. } => "dcache.miss",
            TraceEvent::DataCacheWriteBack { .. } => "dcache.writeback",
            TraceEvent::DataCachePurge { .. } => "dcache.purge",
            TraceEvent::DataCacheBypass { .. } => "dcache.bypass",
            TraceEvent::CodeCacheHit { .. } => "ccache.hit",
            TraceEvent::CodeCacheMiss { .. } => "ccache.miss",
            TraceEvent::CodeCacheTibHit { .. } => "ccache.tib_hit",
            TraceEvent::CodeCacheTibMiss { .. } => "ccache.tib_miss",
            TraceEvent::CodeCachePurge { .. } => "ccache.purge",
            TraceEvent::JmmBarrier { .. } => "jmm.barrier",
            TraceEvent::MonitorAcquire { .. } => "monitor.acquire",
            TraceEvent::MonitorContended { .. } => "monitor.contended",
            TraceEvent::MonitorRelease { .. } => "monitor.release",
            TraceEvent::SyscallProxy { .. } => "native.syscall_proxy",
            TraceEvent::JniBridge { .. } => "native.jni_bridge",
            TraceEvent::GcBegin { .. } => "gc.begin",
            TraceEvent::GcPhaseEnd { .. } => "gc.phase_end",
            TraceEvent::GcEnd { .. } => "gc.end",
            TraceEvent::ThreadSwitch { .. } => "thread.switch",
            TraceEvent::MfcFault { .. } => "fault.mfc",
            TraceEvent::MfcRetry { .. } => "fault.retry",
            TraceEvent::WatchdogTimeout { .. } => "fault.watchdog",
            TraceEvent::SpeFailed { .. } => "fault.spe_failed",
            TraceEvent::SpeDrained { .. } => "fault.spe_drained",
            TraceEvent::Checkpoint { .. } => "snap.checkpoint",
            TraceEvent::Restore { .. } => "snap.restore",
        }
    }

    /// Category and JSON `args` body used by the Chrome exporter for instant
    /// events.  Duration events (method frames, GC) are handled separately.
    pub fn kind_args(&self) -> TraceKindArgs {
        let (cat, args) = match *self {
            TraceEvent::MethodInvoke { method } | TraceEvent::MethodReturn { method } => {
                ("method", format!("\"method\":{method}"))
            }
            TraceEvent::MigrateOut {
                kind,
                to_lane,
                thread,
            } => (
                "migration",
                format!(
                    "\"kind\":\"{}\",\"to_lane\":{to_lane},\"thread\":{thread}",
                    kind.label()
                ),
            ),
            TraceEvent::MigrateIn {
                kind,
                from_lane,
                thread,
            } => (
                "migration",
                format!(
                    "\"kind\":\"{}\",\"from_lane\":{from_lane},\"thread\":{thread}",
                    kind.label()
                ),
            ),
            TraceEvent::Dma {
                tag,
                bytes,
                queue_cycles,
                transfer_cycles,
            } => (
                "dma",
                format!(
                    "\"tag\":\"{}\",\"bytes\":{bytes},\"queue_cycles\":{queue_cycles},\"transfer_cycles\":{transfer_cycles}",
                    tag.label()
                ),
            ),
            TraceEvent::EibStall { cycles } => ("dma", format!("\"cycles\":{cycles}")),
            TraceEvent::DataCacheHit { addr } => ("dcache", format!("\"addr\":{addr}")),
            TraceEvent::DataCacheMiss { addr, bytes } => {
                ("dcache", format!("\"addr\":{addr},\"bytes\":{bytes}"))
            }
            TraceEvent::DataCacheWriteBack { addr, bytes } => {
                ("dcache", format!("\"addr\":{addr},\"bytes\":{bytes}"))
            }
            TraceEvent::DataCachePurge { resident_units } => {
                ("dcache", format!("\"resident_units\":{resident_units}"))
            }
            TraceEvent::DataCacheBypass { addr, bytes } => {
                ("dcache", format!("\"addr\":{addr},\"bytes\":{bytes}"))
            }
            TraceEvent::CodeCacheHit { method } => ("ccache", format!("\"method\":{method}")),
            TraceEvent::CodeCacheMiss { method, bytes } => {
                ("ccache", format!("\"method\":{method},\"bytes\":{bytes}"))
            }
            TraceEvent::CodeCacheTibHit { class } => ("ccache", format!("\"class\":{class}")),
            TraceEvent::CodeCacheTibMiss { class, bytes } => {
                ("ccache", format!("\"class\":{class},\"bytes\":{bytes}"))
            }
            TraceEvent::CodeCachePurge { bytes_in_use } => {
                ("ccache", format!("\"bytes_in_use\":{bytes_in_use}"))
            }
            TraceEvent::JmmBarrier { kind } => {
                ("jmm", format!("\"kind\":\"{}\"", kind.label()))
            }
            TraceEvent::MonitorAcquire { obj }
            | TraceEvent::MonitorContended { obj }
            | TraceEvent::MonitorRelease { obj } => ("monitor", format!("\"obj\":{obj}")),
            TraceEvent::SyscallProxy { native } | TraceEvent::JniBridge { native } => {
                ("native", format!("\"native\":{native}"))
            }
            TraceEvent::GcBegin { requester_lane } => {
                ("gc", format!("\"requester_lane\":{requester_lane}"))
            }
            TraceEvent::GcPhaseEnd {
                phase,
                items,
                bytes,
            } => (
                "gc",
                format!(
                    "\"phase\":\"{}\",\"items\":{items},\"bytes\":{bytes}",
                    phase.label()
                ),
            ),
            TraceEvent::GcEnd {
                freed_objects,
                freed_bytes,
            } => (
                "gc",
                format!("\"freed_objects\":{freed_objects},\"freed_bytes\":{freed_bytes}"),
            ),
            TraceEvent::ThreadSwitch { thread } => ("sched", format!("\"thread\":{thread}")),
            TraceEvent::MfcFault { kind, attempt } => (
                "fault",
                format!("\"kind\":\"{}\",\"attempt\":{attempt}", kind.label()),
            ),
            TraceEvent::MfcRetry {
                attempt,
                backoff_cycles,
            } => (
                "fault",
                format!("\"attempt\":{attempt},\"backoff_cycles\":{backoff_cycles}"),
            ),
            TraceEvent::WatchdogTimeout { kind, cycles } => (
                "fault",
                format!("\"kind\":\"{}\",\"cycles\":{cycles}", kind.label()),
            ),
            TraceEvent::SpeFailed { spe } => ("fault", format!("\"spe\":{spe}")),
            TraceEvent::SpeDrained { threads } => ("fault", format!("\"threads\":{threads}")),
            TraceEvent::Checkpoint { seq, bytes } => {
                ("snap", format!("\"seq\":{seq},\"bytes\":{bytes}"))
            }
            TraceEvent::Restore { seq } => ("snap", format!("\"seq\":{seq}")),
        };
        TraceKindArgs { cat, args }
    }
}
