//! hera-trace: virtual-time tracing and metrics substrate for the Hera-JVM
//! simulator.
//!
//! The simulator advances a deterministic *virtual* clock per core (PPE plus
//! one lane per SPE).  This crate records typed [`TraceEvent`]s into per-core
//! lanes stamped with that clock, so two identical runs produce byte-identical
//! traces.  It knows nothing about the simulator's types — lanes are plain
//! indices, methods/objects/classes are plain ids — which keeps the crate at
//! the bottom of the dependency graph with zero external dependencies.
//!
//! Three consumers ship with the crate:
//! - [`MetricsRegistry`]: named counters and log2-bucketed histograms that
//!   subsume the simulator's ad-hoc statistic structs;
//! - [`chrome_trace_json`]: Chrome trace-event JSON (Perfetto /
//!   chrome://tracing loadable, one track per core lane);
//! - [`text_summary`]: a plain-text per-core digest.
//!
//! Tracing is zero-cost when disabled: every hook in the simulator is a
//! single `if sink.is_enabled()` branch, and no virtual cycles are ever
//! charged for observation, so enabling tracing cannot perturb simulated
//! time.

pub mod chrome;
pub mod cost;
pub mod event;
pub mod metrics;
pub mod sink;
pub mod span;
pub mod summary;

pub use chrome::{chrome_trace_json, chrome_trace_json_with, fleet_trace_json};
pub use cost::{CostClass, CostVec};
pub use event::{
    BarrierKind, DmaTag, GcPhase, InjectedFault, MigrationKind, TraceEvent, TraceKindArgs,
};
pub use metrics::{nearest_rank, ExactPercentiles, Histogram, MetricsRegistry, TimeSeries};
pub use sink::{Lane, TimedEvent, TraceSink};
pub use span::{FleetSpan, FlowArrow, FlowKind};
pub use summary::text_summary;
