//! Named counters and histograms.
//!
//! `BTreeMap` keys keep iteration (and therefore rendering and equality)
//! deterministic, which the trace determinism test relies on.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A log2-bucketed histogram of `u64` samples.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Histogram {
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
    /// `buckets[i]` counts samples with `bit_length(v) == i`, i.e. bucket 0
    /// holds v == 0, bucket i holds 2^(i-1) <= v < 2^i.
    pub buckets: [u64; 65],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
            buckets: [0; 65],
        }
    }
}

impl Histogram {
    pub fn record(&mut self, v: u64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
        self.buckets[(64 - v.leading_zeros()) as usize] += 1;
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimate the `q`-quantile (`0.0 < q <= 1.0`) from the log2 buckets.
    ///
    /// The estimator finds the bucket holding the sample of rank
    /// `ceil(q * count)` and places the estimate at the midpoint of that
    /// sample's equal sub-range of the bucket, clamped to the observed
    /// `[min, max]`.  Integer arithmetic throughout, so the estimate is
    /// deterministic across platforms; the error is bounded by the bucket
    /// width (a factor of two).
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if seen + n >= rank {
                // Bucket i holds [2^(i-1), 2^i) (bucket 0 holds only 0).
                let lo = if i == 0 { 0 } else { 1u64 << (i - 1) };
                let hi = if i == 0 {
                    0
                } else if i >= 64 {
                    u64::MAX
                } else {
                    (1u64 << i) - 1
                };
                // Midpoint of the (rank - seen)-th of n equal sub-ranges.
                let pos = rank - seen; // 1..=n
                let est = lo + (hi - lo) / n * (pos - 1) + (hi - lo) / (2 * n);
                return est.clamp(self.min, self.max);
            }
            seen += n;
        }
        self.max
    }

    /// Fold another histogram's samples into this one.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (d, s) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *d += s;
        }
    }

    pub fn p50(&self) -> u64 {
        self.percentile(0.50)
    }

    pub fn p95(&self) -> u64 {
        self.percentile(0.95)
    }

    pub fn p99(&self) -> u64 {
        self.percentile(0.99)
    }

    /// Tail-of-the-tail quantile for resilience reporting: hedging and
    /// breakers are judged by what happens to the slowest 0.1%.
    pub fn p999(&self) -> u64 {
        self.percentile(0.999)
    }
}

/// Exact nearest-rank percentile of an ascending sample slice; `q` is in
/// per-mille (950 = p95). Returns 0 for an empty slice.
pub fn nearest_rank(sorted: &[u64], q_permille: u64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let n = sorted.len() as u64;
    let rank = (q_permille * n).div_ceil(1000).clamp(1, n);
    sorted[(rank - 1) as usize]
}

/// Exact percentiles over a retained sample set.
///
/// The log2-bucketed [`Histogram`] answers percentile queries only to
/// within a factor of two — its estimates are *upper bounds* on the true
/// quantile, which is too coarse to judge a "p99 within 2x of baseline"
/// SLO bound. `ExactPercentiles` keeps every sample, sorted, and answers
/// nearest-rank queries exactly. Memory is linear in the sample count,
/// so it fits request-level populations (thousands), not per-cycle ones.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct ExactPercentiles {
    sorted: Vec<u64>,
}

impl ExactPercentiles {
    pub fn new() -> ExactPercentiles {
        ExactPercentiles::default()
    }

    /// Insert `v`, keeping the sample set sorted.
    pub fn record(&mut self, v: u64) {
        let at = self.sorted.partition_point(|&x| x <= v);
        self.sorted.insert(at, v);
    }

    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The samples, ascending.
    pub fn as_slice(&self) -> &[u64] {
        &self.sorted
    }

    /// Exact nearest-rank percentile; `q` in per-mille (990 = p99).
    pub fn percentile_permille(&self, q: u64) -> u64 {
        nearest_rank(&self.sorted, q)
    }

    pub fn p50(&self) -> u64 {
        self.percentile_permille(500)
    }

    pub fn p95(&self) -> u64 {
        self.percentile_permille(950)
    }

    pub fn p99(&self) -> u64 {
        self.percentile_permille(990)
    }

    pub fn p999(&self) -> u64 {
        self.percentile_permille(999)
    }

    pub fn max(&self) -> u64 {
        self.sorted.last().copied().unwrap_or(0)
    }

    /// How many samples are `<= bound` (SLO attainment numerator).
    pub fn count_at_most(&self, bound: u64) -> u64 {
        self.sorted.partition_point(|&x| x <= bound) as u64
    }
}

/// A sampled time series: `(virtual time, value)` points appended in
/// non-decreasing time order by a fixed-cadence sampler.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct TimeSeries {
    pub points: Vec<(u64, u64)>,
}

impl TimeSeries {
    pub fn push(&mut self, t: u64, v: u64) {
        debug_assert!(self.points.last().is_none_or(|&(pt, _)| pt <= t));
        self.points.push((t, v));
    }

    pub fn len(&self) -> usize {
        self.points.len()
    }

    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    pub fn min(&self) -> u64 {
        self.points.iter().map(|&(_, v)| v).min().unwrap_or(0)
    }

    pub fn max(&self) -> u64 {
        self.points.iter().map(|&(_, v)| v).max().unwrap_or(0)
    }

    pub fn last(&self) -> u64 {
        self.points.last().map(|&(_, v)| v).unwrap_or(0)
    }
}

/// Deterministic registry of named counters, histograms and time series.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
    series: BTreeMap<String, TimeSeries>,
}

impl MetricsRegistry {
    /// Add `delta` to the counter `name`, creating it at zero if absent.
    pub fn add(&mut self, name: &str, delta: u64) {
        match self.counters.get_mut(name) {
            Some(c) => *c += delta,
            None => {
                self.counters.insert(name.to_string(), delta);
            }
        }
    }

    /// Set counter `name` to `value` (for one-shot aggregate snapshots).
    pub fn set(&mut self, name: &str, value: u64) {
        self.counters.insert(name.to_string(), value);
    }

    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Record one sample into the histogram `name`.
    pub fn record(&mut self, name: &str, v: u64) {
        match self.histograms.get_mut(name) {
            Some(h) => h.record(v),
            None => {
                let mut h = Histogram::default();
                h.record(v);
                self.histograms.insert(name.to_string(), h);
            }
        }
    }

    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Install a whole histogram under `name`, replacing any existing one.
    /// Used by snapshot restore to rebuild the registry exactly.
    pub fn set_histogram(&mut self, name: &str, h: Histogram) {
        self.histograms.insert(name.to_string(), h);
    }

    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Append one `(virtual time, value)` point to the series `name`.
    pub fn sample(&mut self, name: &str, t: u64, v: u64) {
        match self.series.get_mut(name) {
            Some(s) => s.push(t, v),
            None => {
                let mut s = TimeSeries::default();
                s.push(t, v);
                self.series.insert(name.to_string(), s);
            }
        }
    }

    pub fn time_series(&self, name: &str) -> Option<&TimeSeries> {
        self.series.get(name)
    }

    pub fn series(&self) -> impl Iterator<Item = (&str, &TimeSeries)> {
        self.series.iter().map(|(k, v)| (k.as_str(), v))
    }

    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty() && self.series.is_empty()
    }

    /// Fold another registry into this one (counters add, histogram samples
    /// merge, series points interleave by time — stable, so equal-time
    /// points keep self-before-other order).
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (k, v) in &other.counters {
            self.add(k, *v);
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(h);
        }
        for (k, s) in &other.series {
            let dst = self.series.entry(k.clone()).or_default();
            dst.points.extend_from_slice(&s.points);
            dst.points.sort_by_key(|&(t, _)| t);
        }
    }

    /// Human-readable sorted dump. Histogram percentiles come from log2
    /// buckets and overestimate the true quantile by up to the bucket
    /// width (a factor of two), so they are printed as upper bounds
    /// (`p50<=`); exact figures need [`ExactPercentiles`].
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            let _ = writeln!(out, "{name:<40} {v:>14}");
        }
        for (name, h) in &self.histograms {
            let _ = writeln!(
                out,
                "{:<40} n={} sum={} min={} mean={:.1} p50<={} p95<={} p99<={} max={}",
                name,
                h.count,
                h.sum,
                h.min,
                h.mean(),
                h.p50(),
                h.p95(),
                h.p99(),
                h.max
            );
        }
        for (name, s) in &self.series {
            let (t0, tn) = match (s.points.first(), s.points.last()) {
                (Some(&(t0, _)), Some(&(tn, _))) => (t0, tn),
                _ => (0, 0),
            };
            let _ = writeln!(
                out,
                "{:<40} series n={} span={}..{} min={} max={} last={}",
                name,
                s.len(),
                t0,
                tn,
                s.min(),
                s.max(),
                s.last()
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = MetricsRegistry::default();
        m.add("a", 2);
        m.add("a", 3);
        assert_eq!(m.counter("a"), 5);
        assert_eq!(m.counter("missing"), 0);
    }

    #[test]
    fn histogram_buckets_by_log2() {
        let mut h = Histogram::default();
        h.record(0);
        h.record(1);
        h.record(7);
        h.record(8);
        assert_eq!(h.count, 4);
        assert_eq!(h.sum, 16);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 8);
        assert_eq!(h.buckets[0], 1); // 0
        assert_eq!(h.buckets[1], 1); // 1
        assert_eq!(h.buckets[3], 1); // 7 -> [4,8)
        assert_eq!(h.buckets[4], 1); // 8 -> [8,16)
    }

    #[test]
    fn merge_adds_counters_and_histograms() {
        let mut a = MetricsRegistry::default();
        a.add("c", 1);
        a.record("h", 4);
        let mut b = MetricsRegistry::default();
        b.add("c", 2);
        b.record("h", 16);
        a.merge(&b);
        assert_eq!(a.counter("c"), 3);
        let h = a.histogram("h").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.min, 4);
        assert_eq!(h.max, 16);
    }

    #[test]
    fn percentiles_on_empty_histogram_are_zero() {
        let h = Histogram::default();
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p99(), 0);
    }

    #[test]
    fn percentiles_of_a_constant_stream_are_that_constant() {
        let mut h = Histogram::default();
        for _ in 0..100 {
            h.record(42);
        }
        // All samples in one bucket, clamped to [min, max] = [42, 42].
        assert_eq!(h.p50(), 42);
        assert_eq!(h.p95(), 42);
        assert_eq!(h.p99(), 42);
    }

    #[test]
    fn percentiles_are_monotone_and_bucket_accurate() {
        let mut h = Histogram::default();
        // 90 small samples, 9 mid, 1 huge: p50 must sit in the small
        // bucket, p95/p99 in the mid bucket, the 100th percentile at max.
        for _ in 0..90 {
            h.record(10); // bucket [8, 16)
        }
        for _ in 0..9 {
            h.record(1000); // bucket [512, 1024)
        }
        h.record(1_000_000); // bucket [2^19, 2^20)
        let (p50, p95, p99) = (h.p50(), h.p95(), h.p99());
        assert!(p50 <= p95 && p95 <= p99, "{p50} {p95} {p99}");
        assert!((8..16).contains(&p50), "p50={p50}");
        assert!((512..1024).contains(&p95), "p95={p95}");
        assert!((512..1024).contains(&p99), "p99={p99}");
        // Rank 100 lands in the tail bucket, within a factor of two of max.
        let p100 = h.percentile(1.0);
        assert!((524_288..=1_000_000).contains(&p100), "p100={p100}");
    }

    #[test]
    fn render_flags_histogram_percentiles_as_upper_bounds() {
        let mut m = MetricsRegistry::default();
        m.record("lat", 8);
        assert!(m.render().contains("p50<="));
        assert!(m.render().contains("p99<="));
    }

    #[test]
    fn nearest_rank_is_exact_on_small_sets() {
        assert_eq!(nearest_rank(&[], 500), 0);
        assert_eq!(nearest_rank(&[7], 500), 7);
        assert_eq!(nearest_rank(&[7], 999), 7);
        let v = [1, 2, 3, 4, 5, 6, 7, 8, 9, 10];
        assert_eq!(nearest_rank(&v, 500), 5);
        assert_eq!(nearest_rank(&v, 950), 10);
        assert_eq!(nearest_rank(&v, 900), 9);
        assert_eq!(nearest_rank(&v, 100), 1);
    }

    #[test]
    fn exact_percentiles_match_nearest_rank_regardless_of_insert_order() {
        let mut e = ExactPercentiles::new();
        for v in [90, 10, 50, 70, 30, 20, 80, 40, 100, 60] {
            e.record(v);
        }
        assert_eq!(e.as_slice(), &[10, 20, 30, 40, 50, 60, 70, 80, 90, 100]);
        assert_eq!(e.p50(), 50);
        assert_eq!(e.p95(), 100);
        assert_eq!(e.p99(), 100);
        assert_eq!(e.max(), 100);
        assert_eq!(e.count_at_most(55), 5);
        assert_eq!(e.count_at_most(5), 0);
    }

    #[test]
    fn exact_percentiles_are_exact_where_the_histogram_is_an_upper_bound() {
        // 99 fast samples and one straggler: the log2 histogram places
        // p50 somewhere in the [64, 128) bucket, the exact answer is 100.
        let mut h = Histogram::default();
        let mut e = ExactPercentiles::new();
        for _ in 0..99 {
            h.record(100);
            e.record(100);
        }
        h.record(1 << 20);
        e.record(1 << 20);
        assert_eq!(e.p50(), 100);
        assert!(h.p50() >= e.p50(), "histogram p50 is an upper bound");
    }

    #[test]
    fn series_render_and_merge_are_deterministic() {
        let mut m = MetricsRegistry::default();
        m.sample("fleet.q", 100, 3);
        m.sample("fleet.q", 200, 5);
        let mut o = MetricsRegistry::default();
        o.sample("fleet.q", 150, 4);
        m.merge(&o);
        let s = m.time_series("fleet.q").unwrap();
        assert_eq!(s.points, vec![(100, 3), (150, 4), (200, 5)]);
        assert_eq!(s.min(), 3);
        assert_eq!(s.max(), 5);
        assert_eq!(s.last(), 5);
        let r = m.render();
        assert!(
            r.contains("series n=3 span=100..200 min=3 max=5 last=5"),
            "{r}"
        );
        assert!(!m.is_empty());
    }

    #[test]
    fn render_is_sorted_and_stable() {
        let mut m = MetricsRegistry::default();
        m.add("zz", 1);
        m.add("aa", 2);
        let r = m.render();
        let za = r.find("zz").unwrap();
        let aa = r.find("aa").unwrap();
        assert!(aa < za);
        assert_eq!(r, m.render());
    }
}
