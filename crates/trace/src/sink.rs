//! The per-core event sink.

use crate::event::TraceEvent;
use crate::metrics::MetricsRegistry;

/// An event stamped with the emitting lane's virtual clock.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TimedEvent {
    /// Virtual cycles on the emitting core at emission time.
    pub at: u64,
    pub event: TraceEvent,
}

/// One core's event stream.  Events are appended in emission order; because
/// each lane is stamped with its own core's monotone virtual clock, the
/// stream is non-decreasing in `at`.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Lane {
    pub name: String,
    pub events: Vec<TimedEvent>,
}

/// The trace sink: one lane per simulated core plus a metrics registry.
///
/// A disabled sink ([`TraceSink::disabled`], also the `Default`) drops every
/// `emit` after a single branch — the simulator's hooks all go through
/// [`TraceSink::is_enabled`] / [`TraceSink::emit`] so tracing costs one
/// predictable branch when off and never charges virtual cycles when on.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct TraceSink {
    enabled: bool,
    lanes: Vec<Lane>,
    /// Named counters/histograms populated alongside events.
    pub metrics: MetricsRegistry,
}

impl TraceSink {
    /// A sink that records nothing (the default state of every run).
    pub fn disabled() -> Self {
        TraceSink::default()
    }

    /// An enabled sink with one lane per name, in core-index order
    /// (lane 0 = PPE, lane 1+n = SPE n by the simulator's convention).
    pub fn with_lanes<I, S>(names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        TraceSink {
            enabled: true,
            lanes: names
                .into_iter()
                .map(|n| Lane {
                    name: n.into(),
                    events: Vec::new(),
                })
                .collect(),
            metrics: MetricsRegistry::default(),
        }
    }

    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record `event` on `lane` at virtual time `at`.  No-op when disabled
    /// or when `lane` is out of range (a sink built for fewer cores than the
    /// machine simply ignores the extra lanes).
    #[inline]
    pub fn emit(&mut self, lane: usize, at: u64, event: TraceEvent) {
        if !self.enabled {
            return;
        }
        if let Some(l) = self.lanes.get_mut(lane) {
            l.events.push(TimedEvent { at, event });
        }
    }

    pub fn lanes(&self) -> &[Lane] {
        &self.lanes
    }

    /// A fresh, empty sink with the same enabledness and lane names (the
    /// parallel engine forks one per speculative quantum).
    pub fn fork_empty(&self) -> TraceSink {
        TraceSink {
            enabled: self.enabled,
            lanes: self
                .lanes
                .iter()
                .map(|l| Lane {
                    name: l.name.clone(),
                    events: Vec::new(),
                })
                .collect(),
            metrics: MetricsRegistry::default(),
        }
    }

    /// Append another sink's events lane-by-lane and fold in its metrics
    /// (committing a speculative quantum). Each lane's events must start
    /// at or after this sink's last timestamp on that lane — true by
    /// construction when commits happen in virtual-time order.
    pub fn absorb(&mut self, other: TraceSink) {
        if !self.enabled {
            return;
        }
        for (l, o) in self.lanes.iter_mut().zip(other.lanes) {
            l.events.extend(o.events);
        }
        self.metrics.merge(&other.metrics);
    }

    /// Total events across all lanes.
    pub fn event_count(&self) -> usize {
        self.lanes.iter().map(|l| l.events.len()).sum()
    }

    /// All events of every lane, tagged with their lane index.
    pub fn iter_all(&self) -> impl Iterator<Item = (usize, &TimedEvent)> {
        self.lanes
            .iter()
            .enumerate()
            .flat_map(|(i, l)| l.events.iter().map(move |e| (i, e)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_records_nothing() {
        let mut s = TraceSink::disabled();
        assert!(!s.is_enabled());
        s.emit(0, 10, TraceEvent::EibStall { cycles: 5 });
        assert_eq!(s.event_count(), 0);
        assert!(s.lanes().is_empty());
    }

    #[test]
    fn enabled_sink_records_in_order() {
        let mut s = TraceSink::with_lanes(["ppe", "spe0"]);
        assert!(s.is_enabled());
        s.emit(0, 1, TraceEvent::MethodInvoke { method: 7 });
        s.emit(1, 2, TraceEvent::MethodReturn { method: 7 });
        s.emit(0, 3, TraceEvent::ThreadSwitch { thread: 1 });
        assert_eq!(s.event_count(), 3);
        assert_eq!(s.lanes()[0].events.len(), 2);
        assert_eq!(s.lanes()[0].events[0].at, 1);
        assert_eq!(
            s.lanes()[1].events[0].event,
            TraceEvent::MethodReturn { method: 7 }
        );
    }

    #[test]
    fn out_of_range_lane_is_ignored() {
        let mut s = TraceSink::with_lanes(["ppe"]);
        s.emit(5, 1, TraceEvent::EibStall { cycles: 1 });
        assert_eq!(s.event_count(), 0);
    }

    #[test]
    fn identical_emission_sequences_compare_equal() {
        let build = || {
            let mut s = TraceSink::with_lanes(["ppe", "spe0"]);
            s.emit(0, 4, TraceEvent::MonitorAcquire { obj: 9 });
            s.emit(1, 8, TraceEvent::MonitorRelease { obj: 9 });
            s.metrics.add("monitor.acquires", 1);
            s
        };
        assert_eq!(build(), build());
    }
}
