//! Fleet-level span and flow-arrow vocabulary for hera-scope.
//!
//! The fleet simulator (hera-cluster) records one span tree per request:
//! a root span on the front-end track, queue/dispatch/service children on
//! machine tracks, and causal arrows (retry, hedge, crash requeue, live
//! migration) connecting attempts across tracks. This crate only defines
//! the data model and the Chrome export ([`crate::fleet_trace_json`]);
//! tracks are opaque indices, span ids are whatever the producer picked —
//! determinism is the producer's job (the fleet allocates ids in event
//! order, which is itself deterministic).

/// One span on a fleet track, in fleet-virtual time.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FleetSpan {
    /// Track index (the exporter names tracks from a parallel list).
    pub track: u32,
    /// Display name, e.g. `"service req42"`.
    pub name: String,
    /// Chrome category, e.g. `"request"`, `"queue"`, `"service"`.
    pub cat: &'static str,
    /// Begin timestamp (fleet-virtual cycles).
    pub begin: u64,
    /// Duration in fleet-virtual cycles (0 renders as an instant-like
    /// sliver, used for marker spans such as sheds and breaker trips).
    pub dur: u64,
    /// Producer-assigned span id, unique within one trace.
    pub id: u64,
    /// Parent span id; 0 marks a root span.
    pub parent: u64,
    /// Numeric key/value pairs exported into the Chrome `args` object.
    pub args: Vec<(&'static str, u64)>,
}

/// What kind of causality a [`FlowArrow`] records.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FlowKind {
    /// A timed-out wave scheduling its retry wave.
    Retry,
    /// A slow wave dispatching a hedged duplicate attempt.
    Hedge,
    /// A crash throwing an in-flight job back to the front-end.
    Requeue,
    /// A live migration carrying a running job to another machine.
    Migrate,
    /// A proactive drain moving work off a sick (but still alive)
    /// machine before its resident requests time out.
    Drain,
}

impl FlowKind {
    /// Display name used for both Chrome flow events and tests.
    pub fn name(self) -> &'static str {
        match self {
            FlowKind::Retry => "retry",
            FlowKind::Hedge => "hedge",
            FlowKind::Requeue => "requeue",
            FlowKind::Migrate => "migrate",
            FlowKind::Drain => "drain",
        }
    }
}

/// A causal arrow between two points on (possibly different) tracks,
/// exported as a Chrome `s`/`f` flow-event pair.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FlowArrow {
    pub kind: FlowKind,
    /// Flow id, unique within one trace (shared by the s/f pair).
    pub id: u64,
    pub from_track: u32,
    pub from_ts: u64,
    pub to_track: u32,
    pub to_ts: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flow_kind_names_are_distinct() {
        let names = [
            FlowKind::Retry.name(),
            FlowKind::Hedge.name(),
            FlowKind::Requeue.name(),
            FlowKind::Migrate.name(),
            FlowKind::Drain.name(),
        ];
        for (i, a) in names.iter().enumerate() {
            for b in &names[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}
