//! Plain-text per-core trace digest.

use crate::sink::TraceSink;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Render a per-lane summary: event counts by kind, first/last virtual
/// timestamps, followed by the metrics registry.
pub fn text_summary(sink: &TraceSink) -> String {
    let mut out = String::new();
    if !sink.is_enabled() {
        out.push_str("trace: disabled (no events recorded)\n");
    }
    for lane in sink.lanes() {
        let _ = writeln!(out, "lane {:<8} {:>8} events", lane.name, lane.events.len());
        if lane.events.is_empty() {
            continue;
        }
        let first = lane.events.first().unwrap().at;
        let last = lane.events.last().unwrap().at;
        let _ = writeln!(out, "  span: {first} .. {last} virtual cycles");
        let mut by_kind: BTreeMap<&'static str, u64> = BTreeMap::new();
        for te in &lane.events {
            *by_kind.entry(te.event.kind_name()).or_insert(0) += 1;
        }
        for (kind, n) in by_kind {
            let _ = writeln!(out, "  {kind:<24} {n:>10}");
        }
    }
    if !sink.metrics.is_empty() {
        out.push_str("metrics:\n");
        for line in sink.metrics.render().lines() {
            let _ = writeln!(out, "  {line}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceEvent;

    #[test]
    fn summary_counts_by_kind() {
        let mut s = TraceSink::with_lanes(["ppe", "spe0"]);
        s.emit(0, 1, TraceEvent::MethodInvoke { method: 1 });
        s.emit(0, 2, TraceEvent::MethodInvoke { method: 2 });
        s.emit(0, 9, TraceEvent::MethodReturn { method: 2 });
        s.metrics.add("dma.transfers", 3);
        let t = text_summary(&s);
        assert!(t.contains("lane ppe"));
        assert!(t.contains("method.invoke"));
        assert!(t.contains("2"));
        assert!(t.contains("span: 1 .. 9"));
        assert!(t.contains("dma.transfers"));
    }
}
