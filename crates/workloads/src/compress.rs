//! The compress benchmark: LZW compression + decompression.
//!
//! Stands in for SPECjvm-2008 *compress* (whose source is not
//! redistributable). Like the original, each worker thread compresses
//! and then decompresses an independent buffer, and the defining
//! characteristic is *memory behaviour*: the LZW dictionary is probed by
//! hash over tens of kilobytes of arrays with poor locality. On the PPE
//! the hardware L1/L2 absorb the probes; on an SPE every miss is a DMA,
//! which is why the paper finds compress "spends more of its execution
//! accessing main memory than the other benchmarks" and runs slowest
//! there (Figures 4–6).
//!
//! The corpus is generated in-guest by a deterministic LCG that mixes
//! fresh literals with back-references (so the dictionary actually
//! fills). The host-side [`reference_checksum`] replays the identical
//! wrapping-i32 arithmetic, making the guest result bit-checkable.

use hera_core::native::install_runtime;
use hera_frontend::*;
use hera_isa::{ElemTy, Program, ProgramBuilder, Ty};

/// Compress parameters.
#[derive(Clone, Copy, Debug)]
pub struct Params {
    /// Input bytes per worker thread.
    pub bytes_per_thread: i32,
    /// Worker thread count.
    pub threads: u32,
}

/// Dictionary capacity (12-bit codes, as in classic `compress`).
const DICT: i32 = 4096;
/// Hash table slots (25% max load keeps probes short; the three 64 KiB
/// side tables give compress its defining large, poorly-local working
/// set, as in the SPEC original).
const HASH: i32 = 16384;

impl Params {
    /// Simulation-friendly size: `scale` sets the *total* input
    /// (`scale` ≈ 1.0 → 144 KiB), split evenly across threads so the
    /// same experiment compares fairly at different core counts.
    pub fn scaled(threads: u32, scale: f64) -> Params {
        Params {
            bytes_per_thread: ((147_456.0 * scale) as i32 / threads.max(1) as i32).max(1024),
            threads,
        }
    }
}

/// The corpus generator, shared (conceptually) between guest and host:
/// one LCG step per decision.
///
/// state' = state * 1103515245 + 12345 (wrapping i32)
/// r = (state' >>> 16) & 0x7fff
fn lcg_constants() -> (i32, i32) {
    (1103515245, 12345)
}

/// Seed-mixing multiplier (shared by guest literal and host mirror).
const SEED_MIX: i32 = 0x9E37_79B9_u32 as i32;

/// Per-thread seed (must match between guest and host).
pub fn seed_for(thread: i32) -> i32 {
    0x1234_5678i32.wrapping_add(thread).wrapping_mul(SEED_MIX)
}

/// Build the guest program.
pub fn build_program(p: &Params) -> Program {
    let (lcg_a, lcg_c) = lcg_constants();
    let mut pb = ProgramBuilder::new();
    let api = install_runtime(&mut pb);

    let worker = pb.add_class("CompressWorker", Some(api.thread_class));
    let f_seed = pb.add_field(worker, "seed", Ty::Int);
    let f_size = pb.add_field(worker, "size", Ty::Int);
    let f_check = pb.add_field(worker, "check", Ty::Int);

    let cls = pb.add_class("Compress", None);

    // byte[] generate(int seed, int n)
    let generate = declare_static(
        &mut pb,
        cls,
        "generate",
        vec![("seed", Ty::Int), ("n", Ty::Int)],
        Some(Ty::Array(ElemTy::Byte)),
    );
    define(
        &mut pb,
        generate,
        vec![("seed", Ty::Int), ("n", Ty::Int)],
        vec![
            Stmt::Let("buf".into(), new_array(ElemTy::Byte, local("n"))),
            Stmt::Let("state".into(), local("seed")),
            Stmt::Let("i".into(), i32c(0)),
            Stmt::While(
                cmp_lt(local("i"), local("n")),
                vec![
                    Stmt::Assign(
                        "state".into(),
                        add(mul(local("state"), i32c(lcg_a)), i32c(lcg_c)),
                    ),
                    Stmt::Let(
                        "r".into(),
                        band(ushr(local("state"), i32c(16)), i32c(0x7fff)),
                    ),
                    Stmt::If(
                        andand(
                            cmp_lt(band(local("r"), i32c(7)), i32c(2)),
                            cmp_gt(local("i"), i32c(64)),
                        ),
                        vec![
                            // back-reference: copy 16 earlier bytes
                            Stmt::Let("src".into(), rem(local("r"), sub(local("i"), i32c(16)))),
                            Stmt::Let("j".into(), i32c(0)),
                            Stmt::While(
                                andand(
                                    cmp_lt(local("j"), i32c(16)),
                                    cmp_lt(local("i"), local("n")),
                                ),
                                vec![
                                    Stmt::SetIndex(
                                        local("buf"),
                                        local("i"),
                                        index(local("buf"), add(local("src"), local("j"))),
                                    ),
                                    Stmt::Assign("i".into(), add(local("i"), i32c(1))),
                                    Stmt::Assign("j".into(), add(local("j"), i32c(1))),
                                ],
                            ),
                        ],
                        vec![
                            // fresh literal from a 16-letter alphabet
                            Stmt::SetIndex(
                                local("buf"),
                                local("i"),
                                add(i32c(97), rem(local("r"), i32c(16))),
                            ),
                            Stmt::Assign("i".into(), add(local("i"), i32c(1))),
                        ],
                    ),
                ],
            ),
            Stmt::Return(Some(local("buf"))),
        ],
    )
    .expect("generate compiles");

    // int compress(byte[] input, int n, int[] out) -> outLen
    let compress_m = declare_static(
        &mut pb,
        cls,
        "compress",
        vec![
            ("input", Ty::Array(ElemTy::Byte)),
            ("n", Ty::Int),
            ("out", Ty::Array(ElemTy::Int)),
        ],
        Some(Ty::Int),
    );
    define(
        &mut pb,
        compress_m,
        vec![
            ("input", Ty::Array(ElemTy::Byte)),
            ("n", Ty::Int),
            ("out", Ty::Array(ElemTy::Int)),
        ],
        vec![
            Stmt::Let("hashCode".into(), new_array(ElemTy::Int, i32c(HASH))),
            Stmt::Let("hashKey".into(), new_array(ElemTy::Int, i32c(HASH))),
            for_range(
                "z",
                i32c(0),
                i32c(HASH),
                vec![Stmt::SetIndex(local("hashCode"), local("z"), i32c(-1))],
            ),
            Stmt::Let("nextCode".into(), i32c(256)),
            Stmt::Let(
                "prefix".into(),
                band(index(local("input"), i32c(0)), i32c(255)),
            ),
            Stmt::Let("outLen".into(), i32c(0)),
            for_range(
                "i",
                i32c(1),
                local("n"),
                vec![
                    Stmt::Let(
                        "c".into(),
                        band(index(local("input"), local("i")), i32c(255)),
                    ),
                    // probe the dictionary for (prefix, c)
                    Stmt::Let("key".into(), bor(shl(local("prefix"), i32c(8)), local("c"))),
                    Stmt::Let(
                        "h".into(),
                        band(
                            bxor(shl(local("prefix"), i32c(4)), local("c")),
                            i32c(HASH - 1),
                        ),
                    ),
                    Stmt::Let("found".into(), i32c(-1)),
                    Stmt::Let("probing".into(), i32c(1)),
                    Stmt::While(
                        cmp_ne(local("probing"), i32c(0)),
                        vec![Stmt::If(
                            cmp_eq(index(local("hashCode"), local("h")), i32c(-1)),
                            vec![Stmt::Assign("probing".into(), i32c(0))],
                            vec![Stmt::If(
                                cmp_eq(index(local("hashKey"), local("h")), local("key")),
                                vec![
                                    Stmt::Assign(
                                        "found".into(),
                                        index(local("hashCode"), local("h")),
                                    ),
                                    Stmt::Assign("probing".into(), i32c(0)),
                                ],
                                vec![Stmt::Assign(
                                    "h".into(),
                                    band(add(local("h"), i32c(1)), i32c(HASH - 1)),
                                )],
                            )],
                        )],
                    ),
                    Stmt::If(
                        cmp_ne(local("found"), i32c(-1)),
                        vec![Stmt::Assign("prefix".into(), local("found"))],
                        vec![
                            Stmt::SetIndex(local("out"), local("outLen"), local("prefix")),
                            Stmt::Assign("outLen".into(), add(local("outLen"), i32c(1))),
                            // frozen dictionary once full (no reset)
                            Stmt::If(
                                cmp_lt(local("nextCode"), i32c(DICT)),
                                vec![
                                    Stmt::SetIndex(
                                        local("hashCode"),
                                        local("h"),
                                        local("nextCode"),
                                    ),
                                    Stmt::SetIndex(local("hashKey"), local("h"), local("key")),
                                    Stmt::Assign(
                                        "nextCode".into(),
                                        add(local("nextCode"), i32c(1)),
                                    ),
                                ],
                                vec![],
                            ),
                            Stmt::Assign("prefix".into(), local("c")),
                        ],
                    ),
                ],
            ),
            Stmt::SetIndex(local("out"), local("outLen"), local("prefix")),
            Stmt::Assign("outLen".into(), add(local("outLen"), i32c(1))),
            Stmt::Return(Some(local("outLen"))),
        ],
    )
    .expect("compress compiles");

    // int decompress(int[] codes, int m, byte[] out) -> bytes written
    let decompress_m = declare_static(
        &mut pb,
        cls,
        "decompress",
        vec![
            ("codes", Ty::Array(ElemTy::Int)),
            ("m", Ty::Int),
            ("out", Ty::Array(ElemTy::Byte)),
        ],
        Some(Ty::Int),
    );
    define(
        &mut pb,
        decompress_m,
        vec![
            ("codes", Ty::Array(ElemTy::Int)),
            ("m", Ty::Int),
            ("out", Ty::Array(ElemTy::Byte)),
        ],
        vec![
            Stmt::Let("prefixOf".into(), new_array(ElemTy::Int, i32c(DICT))),
            Stmt::Let("charOf".into(), new_array(ElemTy::Int, i32c(DICT))),
            Stmt::Let("stack".into(), new_array(ElemTy::Byte, i32c(DICT))),
            Stmt::Let("next".into(), i32c(256)),
            Stmt::Let("pos".into(), i32c(0)),
            Stmt::Let("prev".into(), index(local("codes"), i32c(0))),
            // first code is always a literal
            Stmt::SetIndex(local("out"), local("pos"), local("prev")),
            Stmt::Assign("pos".into(), add(local("pos"), i32c(1))),
            Stmt::Let("firstChar".into(), local("prev")),
            for_range(
                "i",
                i32c(1),
                local("m"),
                vec![
                    Stmt::Let("code".into(), index(local("codes"), local("i"))),
                    Stmt::Let("cur".into(), local("code")),
                    // KwKwK: code not yet defined
                    Stmt::If(
                        cmp_ge(local("code"), local("next")),
                        vec![Stmt::Assign("cur".into(), local("prev"))],
                        vec![],
                    ),
                    // unwind the phrase onto the stack
                    Stmt::Let("sp".into(), i32c(0)),
                    Stmt::While(
                        cmp_ge(local("cur"), i32c(256)),
                        vec![
                            Stmt::SetIndex(
                                local("stack"),
                                local("sp"),
                                index(local("charOf"), local("cur")),
                            ),
                            Stmt::Assign("sp".into(), add(local("sp"), i32c(1))),
                            Stmt::Assign("cur".into(), index(local("prefixOf"), local("cur"))),
                        ],
                    ),
                    Stmt::Assign("firstChar".into(), local("cur")),
                    Stmt::SetIndex(local("out"), local("pos"), local("cur")),
                    Stmt::Assign("pos".into(), add(local("pos"), i32c(1))),
                    Stmt::While(
                        cmp_gt(local("sp"), i32c(0)),
                        vec![
                            Stmt::Assign("sp".into(), sub(local("sp"), i32c(1))),
                            Stmt::SetIndex(
                                local("out"),
                                local("pos"),
                                index(local("stack"), local("sp")),
                            ),
                            Stmt::Assign("pos".into(), add(local("pos"), i32c(1))),
                        ],
                    ),
                    // KwKwK tail character
                    Stmt::If(
                        cmp_ge(local("code"), local("next")),
                        vec![
                            Stmt::SetIndex(local("out"), local("pos"), local("firstChar")),
                            Stmt::Assign("pos".into(), add(local("pos"), i32c(1))),
                        ],
                        vec![],
                    ),
                    // grow the dictionary (frozen at DICT, like the encoder)
                    Stmt::If(
                        cmp_lt(local("next"), i32c(DICT)),
                        vec![
                            Stmt::SetIndex(local("prefixOf"), local("next"), local("prev")),
                            Stmt::SetIndex(local("charOf"), local("next"), local("firstChar")),
                            Stmt::Assign("next".into(), add(local("next"), i32c(1))),
                        ],
                        vec![],
                    ),
                    Stmt::Assign("prev".into(), local("code")),
                ],
            ),
            Stmt::Return(Some(local("pos"))),
        ],
    )
    .expect("decompress compiles");

    // Worker.run(): generate → compress → decompress → verify + checksum.
    let run = declare_virtual(&mut pb, worker, "run", vec![], None);
    define(
        &mut pb,
        run,
        vec![("this", Ty::Ref(worker))],
        vec![
            Stmt::Let("n".into(), field(local("this"), f_size)),
            Stmt::Let(
                "input".into(),
                call(generate, vec![field(local("this"), f_seed), local("n")]),
            ),
            Stmt::Let(
                "codes".into(),
                new_array(ElemTy::Int, add(local("n"), i32c(1))),
            ),
            Stmt::Let(
                "m".into(),
                call(compress_m, vec![local("input"), local("n"), local("codes")]),
            ),
            Stmt::Let("decoded".into(), new_array(ElemTy::Byte, local("n"))),
            Stmt::Let(
                "dn".into(),
                call(
                    decompress_m,
                    vec![local("codes"), local("m"), local("decoded")],
                ),
            ),
            // verify round-trip
            Stmt::Let("ok".into(), i32c(1)),
            Stmt::If(
                cmp_ne(local("dn"), local("n")),
                vec![Stmt::Assign("ok".into(), i32c(0))],
                vec![for_range(
                    "v",
                    i32c(0),
                    local("n"),
                    vec![Stmt::If(
                        cmp_ne(
                            index(local("input"), local("v")),
                            index(local("decoded"), local("v")),
                        ),
                        vec![Stmt::Assign("ok".into(), i32c(0))],
                        vec![],
                    )],
                )],
            ),
            // checksum: codes + ratio + roundtrip flag
            Stmt::Let("sum".into(), i32c(0)),
            for_range(
                "k",
                i32c(0),
                local("m"),
                vec![Stmt::Assign(
                    "sum".into(),
                    add(
                        mul(local("sum"), i32c(31)),
                        index(local("codes"), local("k")),
                    ),
                )],
            ),
            Stmt::SetField(
                local("this"),
                f_check,
                bxor(
                    bxor(local("sum"), shl(local("m"), i32c(4))),
                    mul(local("ok"), i32c(0x5EED)),
                ),
            ),
        ],
    )
    .expect("run compiles");

    // Main: spawn, join, combine.
    let seed_m = seed_method(&mut pb, cls);
    let main = declare_static(&mut pb, cls, "main", vec![], Some(Ty::Int));
    let threads = p.threads as i32;
    define(
        &mut pb,
        main,
        vec![],
        vec![
            Stmt::Let("workers".into(), new_array(ElemTy::Ref, i32c(threads))),
            Stmt::Let("tids".into(), new_array(ElemTy::Int, i32c(threads))),
            for_range(
                "i",
                i32c(0),
                i32c(threads),
                vec![
                    Stmt::Let("w".into(), Expr::New(worker)),
                    Stmt::SetField(local("w"), f_size, i32c(p.bytes_per_thread)),
                    Stmt::SetField(local("w"), f_seed, call(seed_m, vec![local("i")])),
                    Stmt::SetIndex(local("workers"), local("i"), local("w")),
                    Stmt::SetIndex(local("tids"), local("i"), call(api.spawn, vec![local("w")])),
                ],
            ),
            Stmt::Let("total".into(), i32c(0)),
            for_range(
                "j",
                i32c(0),
                i32c(threads),
                vec![
                    Stmt::Expr(call(api.join, vec![index(local("tids"), local("j"))])),
                    Stmt::Let(
                        "wj".into(),
                        cast(Ty::Ref(worker), index(local("workers"), local("j"))),
                    ),
                    Stmt::Assign(
                        "total".into(),
                        bxor(mul(local("total"), i32c(7)), field(local("wj"), f_check)),
                    ),
                ],
            ),
            Stmt::Return(Some(local("total"))),
        ],
    )
    .expect("main compiles");

    pb.finish_with_entry("Compress", "main").expect("resolves")
}

/// `int seedFor(int thread)` — declared lazily on first use so `main`
/// can reference it. Memoised by name lookup.
fn seed_method(pb: &mut ProgramBuilder, cls: hera_isa::ClassId) -> hera_isa::MethodId {
    // One declaration only: main() is built once per program.
    let m = declare_static(pb, cls, "seedFor", vec![("t", Ty::Int)], Some(Ty::Int));
    define(
        pb,
        m,
        vec![("t", Ty::Int)],
        vec![Stmt::Return(Some(mul(
            add(i32c(0x1234_5678), local("t")),
            i32c(SEED_MIX),
        )))],
    )
    .expect("seedFor compiles");
    m
}

// ---- host reference ----

/// Host-side corpus generator (public for property tests).
pub fn host_generate(seed: i32, n: usize) -> Vec<u8> {
    let (a, c) = lcg_constants();
    let mut buf = vec![0u8; n];
    let mut state = seed;
    let mut i = 0usize;
    while i < n {
        state = state.wrapping_mul(a).wrapping_add(c);
        let r = ((state as u32) >> 16) as i32 & 0x7fff;
        if (r & 7) < 2 && i > 64 {
            let src = (r % (i as i32 - 16)) as usize;
            let mut j = 0;
            while j < 16 && i < n {
                buf[i] = buf[src + j];
                i += 1;
                j += 1;
            }
        } else {
            buf[i] = (97 + (r % 16)) as u8;
            i += 1;
        }
    }
    buf
}

/// Host-side LZW compressor (public for property tests).
pub fn host_compress(input: &[u8]) -> Vec<i32> {
    let mut hash_code = vec![-1i32; HASH as usize];
    let mut hash_key = vec![0i32; HASH as usize];
    let mut next_code = 256i32;
    let mut prefix = input[0] as i32;
    let mut out = Vec::new();
    for &b in &input[1..] {
        let c = b as i32;
        let key = (prefix << 8) | c;
        let mut h = ((prefix << 4) ^ c) & (HASH - 1);
        let mut found = -1;
        loop {
            if hash_code[h as usize] == -1 {
                break;
            }
            if hash_key[h as usize] == key {
                found = hash_code[h as usize];
                break;
            }
            h = (h + 1) & (HASH - 1);
        }
        if found != -1 {
            prefix = found;
        } else {
            out.push(prefix);
            if next_code < DICT {
                hash_code[h as usize] = next_code;
                hash_key[h as usize] = key;
                next_code += 1;
            }
            prefix = c;
        }
    }
    out.push(prefix);
    out
}

/// Host-side LZW decompressor (public for property tests).
pub fn host_decompress(codes: &[i32], expect_len: usize) -> Vec<u8> {
    let mut prefix_of = vec![0i32; DICT as usize];
    let mut char_of = vec![0i32; DICT as usize];
    let mut next = 256i32;
    let mut out = Vec::with_capacity(expect_len);
    let mut prev = codes[0];
    out.push(prev as u8);
    for &code in &codes[1..] {
        let mut cur = if code >= next { prev } else { code };
        let mut stack = Vec::new();
        while cur >= 256 {
            stack.push(char_of[cur as usize] as u8);
            cur = prefix_of[cur as usize];
        }
        let first_char = cur;
        out.push(cur as u8);
        while let Some(b) = stack.pop() {
            out.push(b);
        }
        if code >= next {
            out.push(first_char as u8);
        }
        if next < DICT {
            prefix_of[next as usize] = prev;
            char_of[next as usize] = first_char;
            next += 1;
        }
        prev = code;
    }
    out
}

/// Host reference checksum replicating the guest bit-for-bit.
pub fn reference_checksum(p: &Params) -> i32 {
    let mut total: i32 = 0;
    for t in 0..p.threads as i32 {
        let seed = seed_for(t);
        let input = host_generate(seed, p.bytes_per_thread as usize);
        let codes = host_compress(&input);
        let decoded = host_decompress(&codes, input.len());
        let ok = i32::from(decoded == input);
        let mut sum: i32 = 0;
        for &c in &codes {
            sum = sum.wrapping_mul(31).wrapping_add(c);
        }
        let m = codes.len() as i32;
        let check = sum ^ (m << 4) ^ ok.wrapping_mul(0x5EED);
        total = total.wrapping_mul(7) ^ check;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_roundtrip() {
        let input = host_generate(seed_for(0), 8192);
        let codes = host_compress(&input);
        assert!(codes.len() < input.len(), "should actually compress");
        let decoded = host_decompress(&codes, input.len());
        assert_eq!(decoded, input);
    }

    #[test]
    fn host_roundtrip_many_seeds() {
        for t in 0..8 {
            let input = host_generate(seed_for(t), 4000 + 97 * t as usize);
            let decoded = host_decompress(&host_compress(&input), input.len());
            assert_eq!(decoded, input, "seed {t}");
        }
    }

    #[test]
    fn generator_mixes_literals_and_backrefs() {
        let input = host_generate(seed_for(0), 16384);
        // Alphabet bytes only.
        assert!(input.iter().all(|&b| (97..113).contains(&b)));
        // Compressible: LZW should reach well under 70%.
        let codes = host_compress(&input);
        assert!((codes.len() as f64) < 0.7 * input.len() as f64);
    }

    #[test]
    fn program_builds_and_verifies() {
        let p = Params {
            bytes_per_thread: 2048,
            threads: 2,
        };
        let program = build_program(&p);
        hera_isa::verify_program(&program).expect("verifies");
    }

    #[test]
    fn reference_checksum_is_stable() {
        let p = Params {
            bytes_per_thread: 4096,
            threads: 3,
        };
        assert_eq!(reference_checksum(&p), reference_checksum(&p));
    }
}
