//! Small single-purpose guest kernels used by examples, tests and the
//! ablation benches — cheap to run, each stressing one machine aspect.

use hera_frontend::*;
use hera_isa::{ElemTy, Program, ProgramBuilder, Ty};

/// A dense f32 matrix–matrix multiply (`n`×`n`): FP + strided array
/// traffic. Returns the program; result is a wrapped-int checksum of C.
pub fn matmul_program(n: i32) -> Program {
    let mut pb = ProgramBuilder::new();
    let cls = pb.add_class("MatMul", None);
    let main = declare_static(&mut pb, cls, "main", vec![], Some(Ty::Int));
    define(
        &mut pb,
        main,
        vec![],
        vec![
            Stmt::Let("a".into(), new_array(ElemTy::Float, i32c(n * n))),
            Stmt::Let("b".into(), new_array(ElemTy::Float, i32c(n * n))),
            Stmt::Let("c".into(), new_array(ElemTy::Float, i32c(n * n))),
            for_range(
                "i",
                i32c(0),
                i32c(n * n),
                vec![
                    Stmt::SetIndex(
                        local("a"),
                        local("i"),
                        mul(cast(Ty::Float, rem(local("i"), i32c(7))), f32c(0.25)),
                    ),
                    Stmt::SetIndex(
                        local("b"),
                        local("i"),
                        mul(cast(Ty::Float, rem(local("i"), i32c(5))), f32c(0.5)),
                    ),
                ],
            ),
            for_range(
                "r",
                i32c(0),
                i32c(n),
                vec![for_range(
                    "cc",
                    i32c(0),
                    i32c(n),
                    vec![
                        Stmt::Let("acc".into(), f32c(0.0)),
                        for_range(
                            "k",
                            i32c(0),
                            i32c(n),
                            vec![Stmt::Assign(
                                "acc".into(),
                                add(
                                    local("acc"),
                                    mul(
                                        index(
                                            local("a"),
                                            add(mul(local("r"), i32c(n)), local("k")),
                                        ),
                                        index(
                                            local("b"),
                                            add(mul(local("k"), i32c(n)), local("cc")),
                                        ),
                                    ),
                                ),
                            )],
                        ),
                        Stmt::SetIndex(
                            local("c"),
                            add(mul(local("r"), i32c(n)), local("cc")),
                            local("acc"),
                        ),
                    ],
                )],
            ),
            Stmt::Let("sum".into(), i32c(0)),
            for_range(
                "j",
                i32c(0),
                i32c(n * n),
                vec![Stmt::Assign(
                    "sum".into(),
                    add(local("sum"), cast(Ty::Int, index(local("c"), local("j")))),
                )],
            ),
            Stmt::Return(Some(local("sum"))),
        ],
    )
    .expect("matmul compiles");
    pb.finish_with_entry("MatMul", "main").expect("resolves")
}

/// Host reference for [`matmul_program`].
pub fn matmul_reference(n: i32) -> i32 {
    let nn = (n * n) as usize;
    let mut a = vec![0f32; nn];
    let mut b = vec![0f32; nn];
    for i in 0..nn {
        a[i] = (i as i32 % 7) as f32 * 0.25;
        b[i] = (i as i32 % 5) as f32 * 0.5;
    }
    let mut sum: i32 = 0;
    let mut c = vec![0f32; nn];
    for r in 0..n as usize {
        for cc in 0..n as usize {
            let mut acc = 0f32;
            for k in 0..n as usize {
                acc += a[r * n as usize + k] * b[k * n as usize + cc];
            }
            c[r * n as usize + cc] = acc;
        }
    }
    for v in c {
        sum = sum.wrapping_add(v as i32);
    }
    sum
}

/// A sieve of Eratosthenes over `n` numbers: branchy integer code with
/// a byte-array working set (strided, prefetch-unfriendly).
pub fn sieve_program(n: i32) -> Program {
    let mut pb = ProgramBuilder::new();
    let cls = pb.add_class("Sieve", None);
    let main = declare_static(&mut pb, cls, "main", vec![], Some(Ty::Int));
    define(
        &mut pb,
        main,
        vec![],
        vec![
            Stmt::Let("composite".into(), new_array(ElemTy::Byte, i32c(n))),
            Stmt::Let("count".into(), i32c(0)),
            for_range(
                "i",
                i32c(2),
                i32c(n),
                vec![Stmt::If(
                    cmp_eq(index(local("composite"), local("i")), i32c(0)),
                    vec![
                        Stmt::Assign("count".into(), add(local("count"), i32c(1))),
                        Stmt::Let("j".into(), mul(local("i"), i32c(2))),
                        Stmt::While(
                            andand(
                                cmp_lt(local("j"), i32c(n)),
                                cmp_gt(local("j"), i32c(0)), // overflow guard
                            ),
                            vec![
                                Stmt::SetIndex(local("composite"), local("j"), i32c(1)),
                                Stmt::Assign("j".into(), add(local("j"), local("i"))),
                            ],
                        ),
                    ],
                    vec![],
                )],
            ),
            Stmt::Return(Some(local("count"))),
        ],
    )
    .expect("sieve compiles");
    pb.finish_with_entry("Sieve", "main").expect("resolves")
}

/// Host reference for [`sieve_program`]: π(n-1).
pub fn sieve_reference(n: i32) -> i32 {
    let n = n as usize;
    let mut composite = vec![false; n];
    let mut count = 0;
    for i in 2..n {
        if !composite[i] {
            count += 1;
            let mut j = 2 * i;
            while j < n {
                composite[j] = true;
                j += i;
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernels_build_and_verify() {
        for program in [matmul_program(8), sieve_program(500)] {
            hera_isa::verify_program(&program).expect("verifies");
        }
    }

    #[test]
    fn sieve_reference_counts_primes() {
        assert_eq!(sieve_reference(10), 4); // 2 3 5 7
        assert_eq!(sieve_reference(100), 25);
    }

    #[test]
    fn matmul_reference_nontrivial() {
        assert_ne!(matmul_reference(8), 0);
        assert_eq!(matmul_reference(8), matmul_reference(8));
    }
}
