//! # hera-workloads — the guest benchmark programs
//!
//! The paper evaluates three multi-threaded Java benchmarks:
//! SPECjvm-2008 *compress* and *mpegaudio* (unmodified) and a custom
//! 800×600 *mandelbrot*. SPECjvm sources are not redistributable, so
//! this crate provides replacements written in the guest language
//! (`hera-frontend`) that reproduce the *characteristics* the paper
//! attributes to each benchmark:
//!
//! * [`compress`] — LZW compression + decompression over a generated
//!   corpus. Dictionary hash probing gives poor locality over tens of
//!   kilobytes per thread: **main-memory bound**, the lowest SPE
//!   data-cache hit rate, the steepest degradation as the data cache
//!   shrinks (Figures 4–6).
//! * [`mpegaudio`] — a polyphase synthesis filterbank audio decoder
//!   (the heart of MPEG audio layer I/II): single-precision
//!   multiply-accumulate over cosine tables, spread over many methods —
//!   **FP-moderate and code-cache sensitive** (Figures 4, 5, 7).
//! * [`mandelbrot`] — escape-time iteration: almost pure f32 arithmetic
//!   with a tiny working set — the **SPE's best case** (Figures 4, 5).
//!
//! Every workload is deterministic, partitioned over N worker threads
//! (subclasses of the runtime `Thread` class), and returns an i32
//! checksum that a host-side reference implementation reproduces
//! *bit-exactly* — the correctness anchor for the whole stack.

pub mod compress;
pub mod kernels;
pub mod mandelbrot;
pub mod mpegaudio;

use hera_isa::Program;

/// The three paper benchmarks, as one enumeration for the harness.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Workload {
    /// LZW compression (memory-intensive).
    Compress,
    /// Audio filterbank decoding (FP + code footprint).
    MpegAudio,
    /// Escape-time fractal (FP-intensive).
    Mandelbrot,
}

impl Workload {
    /// All benchmarks, in the paper's presentation order.
    pub const ALL: [Workload; 3] = [
        Workload::Compress,
        Workload::MpegAudio,
        Workload::Mandelbrot,
    ];

    /// The paper's name for this benchmark.
    pub fn name(self) -> &'static str {
        match self {
            Workload::Compress => "compress",
            Workload::MpegAudio => "mpegaudio",
            Workload::Mandelbrot => "mandelbrot",
        }
    }

    /// Build the guest program with `threads` workers at a work scale
    /// suitable for simulation (`scale` ≈ 1.0 is the default experiment
    /// size; larger values grow the input proportionally).
    pub fn build(self, threads: u32, scale: f64) -> (Program, i32) {
        match self {
            Workload::Compress => {
                let p = compress::Params::scaled(threads, scale);
                (
                    compress::build_program(&p),
                    compress::reference_checksum(&p),
                )
            }
            Workload::MpegAudio => {
                let p = mpegaudio::Params::scaled(threads, scale);
                (
                    mpegaudio::build_program(&p),
                    mpegaudio::reference_checksum(&p),
                )
            }
            Workload::Mandelbrot => {
                let p = mandelbrot::Params::scaled(threads, scale);
                (
                    mandelbrot::build_program(&p),
                    mandelbrot::reference_checksum(&p),
                )
            }
        }
    }
}
