//! The mandelbrot benchmark: escape-time iteration over an image.
//!
//! The paper's version renders 800×600. Per pixel the inner loop is
//! almost pure single-precision arithmetic (two multiplies, an add, a
//! compare per iteration) with a tiny working set: the SPE's strong
//! suit, and the benchmark with the paper's best SPE speedup (9.4× on
//! six SPEs). Workers compute disjoint row bands and write the
//! iteration counts into a shared image array (disjoint regions), then
//! publish a per-worker checksum.

use hera_core::native::install_runtime;
use hera_frontend::*;
use hera_isa::{ElemTy, Program, ProgramBuilder, Ty};

/// Mandelbrot parameters.
#[derive(Clone, Copy, Debug)]
pub struct Params {
    /// Image width in pixels.
    pub width: i32,
    /// Image height in pixels.
    pub height: i32,
    /// Maximum escape iterations per pixel.
    pub max_iter: i32,
    /// Worker thread count.
    pub threads: u32,
}

impl Params {
    /// The paper's full size: 800×600.
    pub fn paper(threads: u32) -> Params {
        Params {
            width: 800,
            height: 600,
            max_iter: 64,
            threads,
        }
    }

    /// Simulation-friendly size (`scale` ≈ 1.0 → 192×144).
    pub fn scaled(threads: u32, scale: f64) -> Params {
        let s = scale.max(0.05).sqrt();
        Params {
            width: ((192.0 * s) as i32).max(16),
            height: ((144.0 * s) as i32).max(12),
            max_iter: 64,
            threads,
        }
    }
}

/// The viewport (fixed, matches the classic full-set view).
const X0: f32 = -2.25;
const X1: f32 = 0.75;
const Y0: f32 = -1.25;
const Y1: f32 = 1.25;

/// Build the guest program.
pub fn build_program(p: &Params) -> Program {
    let mut pb = ProgramBuilder::new();
    let api = install_runtime(&mut pb);

    let worker = pb.add_class("MandelWorker", Some(api.thread_class));
    let f_y_from = pb.add_field(worker, "yFrom", Ty::Int);
    let f_y_step = pb.add_field(worker, "yStep", Ty::Int);
    let f_image = pb.add_field(worker, "image", Ty::Array(ElemTy::Int));
    let f_sum = pb.add_field(worker, "sum", Ty::Int);

    // int pixel(float cr, float ci, int maxIter) — the hot kernel.
    let main_c = pb.add_class("Mandelbrot", None);
    let pixel = declare_static(
        &mut pb,
        main_c,
        "pixel",
        vec![("cr", Ty::Float), ("ci", Ty::Float), ("maxIter", Ty::Int)],
        Some(Ty::Int),
    );
    define(
        &mut pb,
        pixel,
        vec![("cr", Ty::Float), ("ci", Ty::Float), ("maxIter", Ty::Int)],
        vec![
            Stmt::Let("zr".into(), f32c(0.0)),
            Stmt::Let("zi".into(), f32c(0.0)),
            Stmt::Let("iter".into(), i32c(0)),
            Stmt::While(
                andand(
                    cmp_lt(local("iter"), local("maxIter")),
                    cmp_le(
                        add(mul(local("zr"), local("zr")), mul(local("zi"), local("zi"))),
                        f32c(4.0),
                    ),
                ),
                vec![
                    Stmt::Let(
                        "t".into(),
                        add(
                            sub(mul(local("zr"), local("zr")), mul(local("zi"), local("zi"))),
                            local("cr"),
                        ),
                    ),
                    Stmt::Assign(
                        "zi".into(),
                        add(mul(mul(f32c(2.0), local("zr")), local("zi")), local("ci")),
                    ),
                    Stmt::Assign("zr".into(), local("t")),
                    Stmt::Assign("iter".into(), add(local("iter"), i32c(1))),
                ],
            ),
            Stmt::Return(Some(local("iter"))),
        ],
    )
    .expect("pixel compiles");

    // Worker.run(): band of rows.
    let run = declare_virtual(&mut pb, worker, "run", vec![], None);
    define(
        &mut pb,
        run,
        vec![("this", Ty::Ref(worker))],
        vec![
            Stmt::Let("img".into(), field(local("this"), f_image)),
            Stmt::Let("sum".into(), i32c(0)),
            Stmt::Let(
                "dx".into(),
                div(sub(f32c(X1), f32c(X0)), cast(Ty::Float, i32c(p.width))),
            ),
            Stmt::Let(
                "dy".into(),
                div(sub(f32c(Y1), f32c(Y0)), cast(Ty::Float, i32c(p.height))),
            ),
            // Striped rows (y, y+T, y+2T, …) so threads are load-balanced
            // even though interior rows iterate far more than edge rows.
            Stmt::For(
                Box::new(Stmt::Let("y".into(), field(local("this"), f_y_from))),
                cmp_lt(local("y"), i32c(p.height)),
                Box::new(Stmt::Assign(
                    "y".into(),
                    add(local("y"), field(local("this"), f_y_step)),
                )),
                vec![
                    Stmt::Let(
                        "ci".into(),
                        add(f32c(Y0), mul(cast(Ty::Float, local("y")), local("dy"))),
                    ),
                    for_range(
                        "x",
                        i32c(0),
                        i32c(p.width),
                        vec![
                            Stmt::Let(
                                "cr".into(),
                                add(f32c(X0), mul(cast(Ty::Float, local("x")), local("dx"))),
                            ),
                            Stmt::Let(
                                "it".into(),
                                call(pixel, vec![local("cr"), local("ci"), i32c(p.max_iter)]),
                            ),
                            Stmt::SetIndex(
                                local("img"),
                                add(mul(local("y"), i32c(p.width)), local("x")),
                                local("it"),
                            ),
                            Stmt::Assign("sum".into(), add(local("sum"), local("it"))),
                        ],
                    ),
                ],
            ),
            Stmt::SetField(local("this"), f_sum, local("sum")),
        ],
    )
    .expect("run compiles");

    // Main: spawn workers over row bands, join, combine.
    let main = declare_static(&mut pb, main_c, "main", vec![], Some(Ty::Int));
    let threads = p.threads as i32;
    define(
        &mut pb,
        main,
        vec![],
        vec![
            Stmt::Let(
                "img".into(),
                new_array(ElemTy::Int, i32c(p.width * p.height)),
            ),
            Stmt::Let("workers".into(), new_array(ElemTy::Ref, i32c(threads))),
            Stmt::Let("tids".into(), new_array(ElemTy::Int, i32c(threads))),
            for_range(
                "i",
                i32c(0),
                i32c(threads),
                vec![
                    Stmt::Let("w".into(), Expr::New(worker)),
                    Stmt::SetField(local("w"), f_y_from, local("i")),
                    Stmt::SetField(local("w"), f_y_step, i32c(threads)),
                    Stmt::SetField(local("w"), f_image, local("img")),
                    Stmt::SetIndex(local("workers"), local("i"), local("w")),
                    Stmt::SetIndex(local("tids"), local("i"), call(api.spawn, vec![local("w")])),
                ],
            ),
            Stmt::Let("total".into(), i32c(0)),
            for_range(
                "j",
                i32c(0),
                i32c(threads),
                vec![
                    Stmt::Expr(call(api.join, vec![index(local("tids"), local("j"))])),
                    Stmt::Let(
                        format!("w{}", "j"),
                        cast(Ty::Ref(worker), index(local("workers"), local("j"))),
                    ),
                    Stmt::Assign(
                        "total".into(),
                        add(local("total"), field(local("wj"), f_sum)),
                    ),
                ],
            ),
            Stmt::Return(Some(local("total"))),
        ],
    )
    .expect("main compiles");

    pb.finish_with_entry("Mandelbrot", "main")
        .expect("program resolves")
}

/// Host reference: identical f32 arithmetic, identical iteration order.
pub fn reference_checksum(p: &Params) -> i32 {
    let dx = (X1 - X0) / p.width as f32;
    let dy = (Y1 - Y0) / p.height as f32;
    let mut total: i32 = 0;
    for y in 0..p.height {
        let ci = Y0 + y as f32 * dy;
        for x in 0..p.width {
            let cr = X0 + x as f32 * dx;
            let (mut zr, mut zi) = (0f32, 0f32);
            let mut iter = 0;
            while iter < p.max_iter && zr * zr + zi * zi <= 4.0 {
                let t = zr * zr - zi * zi + cr;
                zi = 2.0 * zr * zi + ci;
                zr = t;
                iter += 1;
            }
            total = total.wrapping_add(iter);
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn program_builds_and_verifies() {
        let p = Params {
            width: 24,
            height: 16,
            max_iter: 16,
            threads: 2,
        };
        let program = build_program(&p);
        hera_isa::verify_program(&program).expect("verifies");
    }

    #[test]
    fn reference_is_deterministic_and_nontrivial() {
        let p = Params {
            width: 32,
            height: 24,
            max_iter: 32,
            threads: 1,
        };
        let a = reference_checksum(&p);
        let b = reference_checksum(&p);
        assert_eq!(a, b);
        assert!(a > 32 * 24, "some pixels must iterate: {a}");
    }

    #[test]
    fn scaled_params_grow_with_scale() {
        let small = Params::scaled(1, 0.25);
        let big = Params::scaled(1, 4.0);
        assert!(big.width > small.width);
        assert!(big.height > small.height);
        assert_eq!(Params::paper(6).width, 800);
    }
}
