//! The mpegaudio benchmark: a polyphase synthesis filterbank decoder.
//!
//! Stands in for SPECjvm-2008 *mpegaudio*. The computational heart of an
//! MPEG audio layer I/II decoder is reproduced faithfully in shape:
//! per frame, 32 quantised subband samples are dequantised
//! (scale-factor table lookups), matrixed through a 64×32 cosine bank
//! into a 1024-entry sliding FIFO, and windowed with a 512-tap window to
//! produce PCM — all single-precision multiply-accumulate. The hot
//! methods are loop-unrolled (as real decoders are), giving the large
//! *code* footprint that makes this the paper's code-cache-sensitive
//! benchmark (Figure 7), while the data footprint (≈12 KB of read-only
//! tables + 4 KB FIFO per thread) sits comfortably in the data cache
//! (Figure 6's flat curve).
//!
//! The cosine/window/scale-factor tables are built *in-guest* by f32
//! rotation recurrences whose seed constants are embedded as literals;
//! the host reference replays the identical f32 arithmetic, so the
//! checksum is bit-exact.

use hera_core::native::install_runtime;
use hera_frontend::*;
use hera_isa::{ElemTy, Program, ProgramBuilder, Ty};
use std::f64::consts::PI;

/// MpegAudio parameters.
#[derive(Clone, Copy, Debug)]
pub struct Params {
    /// Frames decoded per worker thread.
    pub frames_per_thread: i32,
    /// Worker thread count.
    pub threads: u32,
}

impl Params {
    /// Simulation-friendly size: `scale` sets the *total* frame count
    /// (`scale` ≈ 1.0 → 360 frames), split evenly across threads.
    pub fn scaled(threads: u32, scale: f64) -> Params {
        Params {
            frames_per_thread: ((360.0 * scale) as i32 / threads.max(1) as i32).max(2),
            threads,
        }
    }
}

const LCG_A: i32 = 1103515245;
const LCG_C: i32 = 12345;

fn seed_for(thread: i32) -> i32 {
    0x00C0_FFEE_u32
        .wrapping_add(thread as u32)
        .wrapping_mul(0x9E37_79B9) as i32
}

/// Per-row rotation constants for the cosine bank: row `i` covers
/// angles (16+i)(2k+1)π/64 for k = 0..32.
fn cos_row_constants(i: usize) -> (f32, f32, f32, f32) {
    let start = (16 + i) as f64 * PI / 64.0;
    let step = (16 + i) as f64 * PI / 32.0;
    (
        start.cos() as f32,
        start.sin() as f32,
        step.cos() as f32,
        step.sin() as f32,
    )
}

/// Window recurrence constants: sin(πj/512) rotation.
fn win_constants() -> (f32, f32) {
    let step = PI / 512.0;
    (step.cos() as f32, step.sin() as f32)
}

/// Scale-factor growth constant: 2^(1/4).
fn sf_step() -> f32 {
    2f64.powf(0.25) as f32
}

/// Build the guest program.
pub fn build_program(p: &Params) -> Program {
    let mut pb = ProgramBuilder::new();
    let api = install_runtime(&mut pb);

    // Shared read-only tables (static fields, built once by main).
    let tables = pb.add_class("Tables", None);
    let st_cos = pb.add_static_field(tables, "COS", Ty::Array(ElemTy::Float));
    let st_win = pb.add_static_field(tables, "WIN", Ty::Array(ElemTy::Float));
    let st_sf = pb.add_static_field(tables, "SF", Ty::Array(ElemTy::Float));

    // void buildTables()
    let build_tables = declare_static(&mut pb, tables, "buildTables", vec![], None);
    {
        let mut body: Vec<Stmt> = vec![
            Stmt::Let("cos".into(), new_array(ElemTy::Float, i32c(64 * 32))),
            Stmt::Let("win".into(), new_array(ElemTy::Float, i32c(512))),
            Stmt::Let("sf".into(), new_array(ElemTy::Float, i32c(64))),
            Stmt::Let("c".into(), f32c(0.0)),
            Stmt::Let("s".into(), f32c(0.0)),
            Stmt::Let("t".into(), f32c(0.0)),
            Stmt::Let("k".into(), i32c(0)),
        ];
        // Cosine bank rows, each with its own embedded seed constants.
        for i in 0..64usize {
            let (c0, s0, cs, sn) = cos_row_constants(i);
            body.push(Stmt::Assign("c".into(), f32c(c0)));
            body.push(Stmt::Assign("s".into(), f32c(s0)));
            body.push(Stmt::Assign("k".into(), i32c(0)));
            body.push(Stmt::While(
                cmp_lt(local("k"), i32c(32)),
                vec![
                    Stmt::SetIndex(
                        local("cos"),
                        add(i32c((i * 32) as i32), local("k")),
                        local("c"),
                    ),
                    Stmt::Assign(
                        "t".into(),
                        sub(mul(local("c"), f32c(cs)), mul(local("s"), f32c(sn))),
                    ),
                    Stmt::Assign(
                        "s".into(),
                        add(mul(local("s"), f32c(cs)), mul(local("c"), f32c(sn))),
                    ),
                    Stmt::Assign("c".into(), local("t")),
                    Stmt::Assign("k".into(), add(local("k"), i32c(1))),
                ],
            ));
        }
        // Window: D[j] = sin²(πj/512) / 128.
        let (wc, ws) = win_constants();
        body.push(Stmt::Assign("c".into(), f32c(1.0)));
        body.push(Stmt::Assign("s".into(), f32c(0.0)));
        body.push(Stmt::Assign("k".into(), i32c(0)));
        body.push(Stmt::While(
            cmp_lt(local("k"), i32c(512)),
            vec![
                Stmt::SetIndex(
                    local("win"),
                    local("k"),
                    mul(mul(local("s"), local("s")), f32c(1.0 / 128.0)),
                ),
                Stmt::Assign(
                    "t".into(),
                    sub(mul(local("c"), f32c(wc)), mul(local("s"), f32c(ws))),
                ),
                Stmt::Assign(
                    "s".into(),
                    add(mul(local("s"), f32c(wc)), mul(local("c"), f32c(ws))),
                ),
                Stmt::Assign("c".into(), local("t")),
                Stmt::Assign("k".into(), add(local("k"), i32c(1))),
            ],
        ));
        // Scale factors: sf[j] = 2^(j/4) / 2^8, clamped growth.
        body.push(Stmt::Let("acc".into(), f32c(1.0 / 256.0)));
        body.push(Stmt::Assign("k".into(), i32c(0)));
        body.push(Stmt::While(
            cmp_lt(local("k"), i32c(64)),
            vec![
                Stmt::SetIndex(local("sf"), local("k"), local("acc")),
                Stmt::Assign("acc".into(), mul(local("acc"), f32c(sf_step()))),
                Stmt::Assign("k".into(), add(local("k"), i32c(1))),
            ],
        ));
        body.push(Stmt::SetStatic(st_cos, local("cos")));
        body.push(Stmt::SetStatic(st_win, local("win")));
        body.push(Stmt::SetStatic(st_sf, local("sf")));
        define(&mut pb, build_tables, vec![], body).expect("buildTables compiles");
    }

    let audio = pb.add_class("Audio", None);

    // int dequant(int state, float[] samples) — one LCG draw per
    // subband, scale-factor lookup, returns the advanced state.
    let dequant = declare_static(
        &mut pb,
        audio,
        "dequant",
        vec![("state", Ty::Int), ("samples", Ty::Array(ElemTy::Float))],
        Some(Ty::Int),
    );
    define(
        &mut pb,
        dequant,
        vec![("state", Ty::Int), ("samples", Ty::Array(ElemTy::Float))],
        vec![
            Stmt::Let("sf".into(), static_(st_sf)),
            Stmt::Let("sb".into(), i32c(0)),
            Stmt::While(
                cmp_lt(local("sb"), i32c(32)),
                vec![
                    Stmt::Assign(
                        "state".into(),
                        add(mul(local("state"), i32c(LCG_A)), i32c(LCG_C)),
                    ),
                    Stmt::Let(
                        "q".into(),
                        sub(
                            band(ushr(local("state"), i32c(16)), i32c(0x7fff)),
                            i32c(16384),
                        ),
                    ),
                    Stmt::Let(
                        "scale".into(),
                        index(local("sf"), band(ushr(local("state"), i32c(8)), i32c(63))),
                    ),
                    Stmt::SetIndex(
                        local("samples"),
                        local("sb"),
                        mul(
                            mul(cast(Ty::Float, local("q")), f32c(1.0 / 16384.0)),
                            local("scale"),
                        ),
                    ),
                    Stmt::Assign("sb".into(), add(local("sb"), i32c(1))),
                ],
            ),
            Stmt::Return(Some(local("state"))),
        ],
    )
    .expect("dequant compiles");

    // The matrixing MACs live in four *specialised helper methods*
    // (dot0..dot3, identical unrolled 32-tap bodies), selected per
    // output — mirroring how real decoders specialise hot kernels.
    // The per-output call through the code cache is what makes
    // mpegaudio the code-cache-sensitive benchmark: with 64 helper
    // calls per frame cycling through ~40 KiB of unrolled code, a small
    // code cache thrashes on every invoke/return (Figure 7).
    let mut dots = Vec::new();
    for v in 0..4 {
        let name = format!("dot{v}");
        let dot = declare_static(
            &mut pb,
            audio,
            &name,
            vec![("samples", Ty::Array(ElemTy::Float)), ("base", Ty::Int)],
            Some(Ty::Float),
        );
        let mut body = vec![
            Stmt::Let("cos".into(), static_(st_cos)),
            Stmt::Let("acc".into(), f32c(0.0)),
        ];
        for k in 0..32 {
            body.push(Stmt::Assign(
                "acc".into(),
                add(
                    local("acc"),
                    mul(
                        index(local("cos"), add(local("base"), i32c(k))),
                        index(local("samples"), i32c(k)),
                    ),
                ),
            ));
        }
        body.push(Stmt::Return(Some(local("acc"))));
        define(
            &mut pb,
            dot,
            vec![("samples", Ty::Array(ElemTy::Float)), ("base", Ty::Int)],
            body,
        )
        .expect("dot helper compiles");
        dots.push(dot);
    }

    // void matrix(float[] samples, float[] fifo, int vpos) — drives the
    // 64 outputs through the dot helpers.
    let matrix = declare_static(
        &mut pb,
        audio,
        "matrix",
        vec![
            ("samples", Ty::Array(ElemTy::Float)),
            ("fifo", Ty::Array(ElemTy::Float)),
            ("vpos", Ty::Int),
        ],
        None,
    );
    {
        let pick = |d: usize| call(dots[d], vec![local("samples"), local("base")]);
        let body = vec![
            Stmt::Let("i".into(), i32c(0)),
            Stmt::Let("base".into(), i32c(0)),
            Stmt::Let("acc".into(), f32c(0.0)),
            Stmt::While(
                cmp_lt(local("i"), i32c(64)),
                vec![
                    Stmt::Assign("base".into(), mul(local("i"), i32c(32))),
                    Stmt::If(
                        cmp_eq(band(local("i"), i32c(3)), i32c(0)),
                        vec![Stmt::Assign("acc".into(), pick(0))],
                        vec![Stmt::If(
                            cmp_eq(band(local("i"), i32c(3)), i32c(1)),
                            vec![Stmt::Assign("acc".into(), pick(1))],
                            vec![Stmt::If(
                                cmp_eq(band(local("i"), i32c(3)), i32c(2)),
                                vec![Stmt::Assign("acc".into(), pick(2))],
                                vec![Stmt::Assign("acc".into(), pick(3))],
                            )],
                        )],
                    ),
                    Stmt::SetIndex(
                        local("fifo"),
                        band(add(local("vpos"), local("i")), i32c(1023)),
                        local("acc"),
                    ),
                    Stmt::Assign("i".into(), add(local("i"), i32c(1))),
                ],
            ),
        ];
        define(
            &mut pb,
            matrix,
            vec![
                ("samples", Ty::Array(ElemTy::Float)),
                ("fifo", Ty::Array(ElemTy::Float)),
                ("vpos", Ty::Int),
            ],
            body,
        )
        .expect("matrix compiles");
    }

    // Two specialised windowing helpers (tap0/tap1), unrolled 16 taps.
    let mut taps = Vec::new();
    for v in 0..2 {
        let name = format!("tap{v}");
        let tap = declare_static(
            &mut pb,
            audio,
            &name,
            vec![
                ("fifo", Ty::Array(ElemTy::Float)),
                ("vpos", Ty::Int),
                ("j", Ty::Int),
            ],
            Some(Ty::Float),
        );
        let mut body = vec![
            Stmt::Let("win".into(), static_(st_win)),
            Stmt::Let("acc".into(), f32c(0.0)),
        ];
        for m in 0..16 {
            body.push(Stmt::Assign(
                "acc".into(),
                add(
                    local("acc"),
                    mul(
                        index(
                            local("fifo"),
                            band(
                                add(add(local("vpos"), local("j")), i32c(64 * m)),
                                i32c(1023),
                            ),
                        ),
                        index(local("win"), add(local("j"), i32c(32 * m))),
                    ),
                ),
            ));
        }
        body.push(Stmt::Return(Some(local("acc"))));
        define(
            &mut pb,
            tap,
            vec![
                ("fifo", Ty::Array(ElemTy::Float)),
                ("vpos", Ty::Int),
                ("j", Ty::Int),
            ],
            body,
        )
        .expect("tap helper compiles");
        taps.push(tap);
    }

    // float window(float[] fifo, int vpos) — 32 PCM outputs via the tap
    // helpers; returns the frame's PCM sum.
    let window = declare_static(
        &mut pb,
        audio,
        "window",
        vec![("fifo", Ty::Array(ElemTy::Float)), ("vpos", Ty::Int)],
        Some(Ty::Float),
    );
    {
        let body = vec![
            Stmt::Let("sum".into(), f32c(0.0)),
            Stmt::Let("j".into(), i32c(0)),
            Stmt::Let("acc".into(), f32c(0.0)),
            Stmt::While(
                cmp_lt(local("j"), i32c(32)),
                vec![
                    Stmt::If(
                        cmp_eq(band(local("j"), i32c(1)), i32c(0)),
                        vec![Stmt::Assign(
                            "acc".into(),
                            call(taps[0], vec![local("fifo"), local("vpos"), local("j")]),
                        )],
                        vec![Stmt::Assign(
                            "acc".into(),
                            call(taps[1], vec![local("fifo"), local("vpos"), local("j")]),
                        )],
                    ),
                    Stmt::Assign("sum".into(), add(local("sum"), local("acc"))),
                    Stmt::Assign("j".into(), add(local("j"), i32c(1))),
                ],
            ),
            Stmt::Return(Some(local("sum"))),
        ];
        define(
            &mut pb,
            window,
            vec![("fifo", Ty::Array(ElemTy::Float)), ("vpos", Ty::Int)],
            body,
        )
        .expect("window compiles");
    }

    // Worker.
    let worker = pb.add_class("AudioWorker", Some(api.thread_class));
    let f_seed = pb.add_field(worker, "seed", Ty::Int);
    let f_frames = pb.add_field(worker, "frames", Ty::Int);
    let f_check = pb.add_field(worker, "check", Ty::Int);
    let run = declare_virtual(&mut pb, worker, "run", vec![], None);
    define(
        &mut pb,
        run,
        vec![("this", Ty::Ref(worker))],
        vec![
            Stmt::Let("fifo".into(), new_array(ElemTy::Float, i32c(1024))),
            Stmt::Let("samples".into(), new_array(ElemTy::Float, i32c(32))),
            Stmt::Let("state".into(), field(local("this"), f_seed)),
            Stmt::Let("vpos".into(), i32c(0)),
            Stmt::Let("check".into(), i32c(0)),
            for_range(
                "fr",
                i32c(0),
                field(local("this"), f_frames),
                vec![
                    Stmt::Assign(
                        "state".into(),
                        call(dequant, vec![local("state"), local("samples")]),
                    ),
                    Stmt::Assign(
                        "vpos".into(),
                        band(sub(local("vpos"), i32c(64)), i32c(1023)),
                    ),
                    Stmt::Expr(call(
                        matrix,
                        vec![local("samples"), local("fifo"), local("vpos")],
                    )),
                    Stmt::Let(
                        "pcm".into(),
                        call(window, vec![local("fifo"), local("vpos")]),
                    ),
                    Stmt::Assign(
                        "check".into(),
                        add(
                            mul(local("check"), i32c(31)),
                            cast(Ty::Int, mul(local("pcm"), f32c(256.0))),
                        ),
                    ),
                ],
            ),
            Stmt::SetField(local("this"), f_check, local("check")),
        ],
    )
    .expect("run compiles");

    // Main.
    let main = declare_static(&mut pb, audio, "main", vec![], Some(Ty::Int));
    let threads = p.threads as i32;
    define(
        &mut pb,
        main,
        vec![],
        vec![
            Stmt::Expr(call(build_tables, vec![])),
            Stmt::Let("workers".into(), new_array(ElemTy::Ref, i32c(threads))),
            Stmt::Let("tids".into(), new_array(ElemTy::Int, i32c(threads))),
            for_range(
                "i",
                i32c(0),
                i32c(threads),
                vec![
                    Stmt::Let("w".into(), Expr::New(worker)),
                    Stmt::SetField(local("w"), f_frames, i32c(p.frames_per_thread)),
                    Stmt::SetField(
                        local("w"),
                        f_seed,
                        mul(
                            add(i32c(0x00C0_FFEE), local("i")),
                            i32c(0x9E37_79B9_u32 as i32),
                        ),
                    ),
                    Stmt::SetIndex(local("workers"), local("i"), local("w")),
                    Stmt::SetIndex(local("tids"), local("i"), call(api.spawn, vec![local("w")])),
                ],
            ),
            Stmt::Let("total".into(), i32c(0)),
            for_range(
                "j",
                i32c(0),
                i32c(threads),
                vec![
                    Stmt::Expr(call(api.join, vec![index(local("tids"), local("j"))])),
                    Stmt::Let(
                        "wj".into(),
                        cast(Ty::Ref(worker), index(local("workers"), local("j"))),
                    ),
                    Stmt::Assign(
                        "total".into(),
                        bxor(mul(local("total"), i32c(7)), field(local("wj"), f_check)),
                    ),
                ],
            ),
            Stmt::Return(Some(local("total"))),
        ],
    )
    .expect("main compiles");

    pb.finish_with_entry("Audio", "main").expect("resolves")
}

// ---- host reference (identical f32 arithmetic, identical order) ----

fn host_tables() -> (Vec<f32>, Vec<f32>, Vec<f32>) {
    let mut cos = vec![0f32; 64 * 32];
    for i in 0..64 {
        let (mut c, mut s, cs, sn) = cos_row_constants(i);
        for k in 0..32 {
            cos[i * 32 + k] = c;
            let t = c * cs - s * sn;
            s = s * cs + c * sn;
            c = t;
        }
    }
    let mut win = vec![0f32; 512];
    let (wc, ws) = win_constants();
    let (mut c, mut s) = (1f32, 0f32);
    for slot in win.iter_mut() {
        *slot = s * s * (1.0 / 128.0);
        let t = c * wc - s * ws;
        s = s * wc + c * ws;
        c = t;
    }
    let mut sf = vec![0f32; 64];
    let mut acc = 1f32 / 256.0;
    for slot in sf.iter_mut() {
        *slot = acc;
        acc *= sf_step();
    }
    (cos, win, sf)
}

/// Host reference checksum replicating the guest bit-for-bit.
pub fn reference_checksum(p: &Params) -> i32 {
    let (cos, win, sf) = host_tables();
    let mut total: i32 = 0;
    for t in 0..p.threads as i32 {
        let mut state = seed_for(t);
        let mut fifo = vec![0f32; 1024];
        let mut samples = [0f32; 32];
        let mut vpos: i32 = 0;
        let mut check: i32 = 0;
        for _ in 0..p.frames_per_thread {
            // dequant
            for slot in samples.iter_mut() {
                state = state.wrapping_mul(LCG_A).wrapping_add(LCG_C);
                let q = (((state as u32) >> 16) as i32 & 0x7fff) - 16384;
                let scale = sf[(((state as u32) >> 8) & 63) as usize];
                *slot = q as f32 * (1.0 / 16384.0) * scale;
            }
            vpos = (vpos - 64) & 1023;
            // matrix
            for i in 0..64 {
                let base = i * 32;
                let mut acc = 0f32;
                for (k, &smp) in samples.iter().enumerate() {
                    acc += cos[base + k] * smp;
                }
                fifo[((vpos + i as i32) & 1023) as usize] = acc;
            }
            // window
            let mut sum = 0f32;
            for j in 0..32i32 {
                let mut acc = 0f32;
                for m in 0..16i32 {
                    acc += fifo[((vpos + j + 64 * m) & 1023) as usize] * win[(j + 32 * m) as usize];
                }
                sum += acc;
            }
            check = check.wrapping_mul(31).wrapping_add((sum * 256.0) as i32);
        }
        total = total.wrapping_mul(7) ^ check;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn program_builds_and_verifies() {
        let p = Params {
            frames_per_thread: 2,
            threads: 2,
        };
        let program = build_program(&p);
        hera_isa::verify_program(&program).expect("verifies");
    }

    #[test]
    fn host_tables_look_sane() {
        let (cos, win, sf) = host_tables();
        // Cosine bank entries stay in [-1, 1] (allowing f32 drift).
        assert!(cos.iter().all(|&v| v.abs() <= 1.0001));
        // First row, first entry: cos(16π/64) = cos(π/4).
        assert!((cos[0] - (PI / 4.0).cos() as f32).abs() < 1e-5);
        // Window is nonnegative, peaks mid-table.
        assert!(win.iter().all(|&v| v >= 0.0));
        assert!(win[256] > win[10]);
        // Scale factors grow by 2^(1/4).
        assert!((sf[4] / sf[0] - 2.0).abs() < 1e-4);
    }

    #[test]
    fn reference_checksum_is_stable_and_thread_dependent() {
        let p1 = Params {
            frames_per_thread: 8,
            threads: 2,
        };
        assert_eq!(reference_checksum(&p1), reference_checksum(&p1));
        let p2 = Params {
            frames_per_thread: 8,
            threads: 3,
        };
        assert_ne!(reference_checksum(&p1), reference_checksum(&p2));
    }
}
