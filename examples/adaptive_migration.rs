//! Watch Hera-JVM's placement machinery at work: the same two-phase
//! program (an FP-heavy phase followed by a memory-heavy phase) runs
//! under four policies, showing how annotations and runtime monitoring
//! migrate the thread to whichever core type suits each phase.
//!
//! ```sh
//! cargo run --release -p hera-examples --example adaptive_migration
//! ```

use hera_core::{HeraJvm, PlacementPolicy, VmConfig};
use hera_frontend::*;
use hera_isa::{Annotation, ElemTy, ProgramBuilder, Ty, Value};

/// Two-phase program; `annotated` adds the behaviour hints.
fn program(annotated: bool) -> (hera_isa::Program, i32) {
    const CHUNK: i32 = 2000;
    const FP_CHUNKS: i32 = 15;
    const MEM_N: i32 = 65_536;
    const MEM_CHUNKS: i32 = 40;

    let mut pb = ProgramBuilder::new();
    let cls = pb.add_class("TwoPhase", None);

    let fp_chunk = declare_static(
        &mut pb,
        cls,
        "fpChunk",
        vec![("x", Ty::Float)],
        Some(Ty::Float),
    );
    if annotated {
        pb.annotate(fp_chunk, Annotation::FloatIntensive);
    }
    define(
        &mut pb,
        fp_chunk,
        vec![("x", Ty::Float)],
        vec![
            for_range(
                "i",
                i32c(0),
                i32c(CHUNK),
                vec![Stmt::Assign(
                    "x".into(),
                    mul(mul(f32c(3.58), local("x")), sub(f32c(1.0), local("x"))),
                )],
            ),
            Stmt::Return(Some(local("x"))),
        ],
    )
    .expect("fpChunk compiles");

    let sum_static = pb.add_static_field(cls, "sum", Ty::Int);
    let mem_chunk = declare_static(
        &mut pb,
        cls,
        "memChunk",
        vec![("a", Ty::Array(ElemTy::Int)), ("p", Ty::Int)],
        Some(Ty::Int),
    );
    if annotated {
        pb.annotate(mem_chunk, Annotation::MemoryIntensive);
    }
    define(
        &mut pb,
        mem_chunk,
        vec![("a", Ty::Array(ElemTy::Int)), ("p", Ty::Int)],
        vec![
            Stmt::Let("s".into(), static_(sum_static)),
            for_range(
                "i",
                i32c(0),
                i32c(CHUNK),
                vec![
                    Stmt::Assign("p".into(), index(local("a"), local("p"))),
                    Stmt::Assign("s".into(), add(local("s"), local("p"))),
                ],
            ),
            Stmt::SetStatic(sum_static, local("s")),
            Stmt::Return(Some(local("p"))),
        ],
    )
    .expect("memChunk compiles");

    let main = declare_static(&mut pb, cls, "main", vec![], Some(Ty::Int));
    define(
        &mut pb,
        main,
        vec![],
        vec![
            Stmt::Let("x".into(), f32c(0.618)),
            for_range(
                "c",
                i32c(0),
                i32c(FP_CHUNKS),
                vec![Stmt::Assign("x".into(), call(fp_chunk, vec![local("x")]))],
            ),
            Stmt::Let("a".into(), new_array(ElemTy::Int, i32c(MEM_N))),
            Stmt::Let("v".into(), i32c(0)),
            for_range(
                "i",
                i32c(0),
                i32c(MEM_N),
                vec![
                    Stmt::Assign("v".into(), rem(add(local("v"), i32c(40503)), i32c(MEM_N))),
                    Stmt::SetIndex(local("a"), local("i"), local("v")),
                ],
            ),
            Stmt::Let("p".into(), i32c(0)),
            for_range(
                "c2",
                i32c(0),
                i32c(MEM_CHUNKS),
                vec![Stmt::Assign(
                    "p".into(),
                    call(mem_chunk, vec![local("a"), local("p")]),
                )],
            ),
            Stmt::Return(Some(bxor(
                cast(Ty::Int, mul(local("x"), f32c(65536.0))),
                static_(sum_static),
            ))),
        ],
    )
    .expect("main compiles");
    let program = pb.finish_with_entry("TwoPhase", "main").expect("resolves");

    // Host reference.
    let mut x = 0.618f32;
    for _ in 0..FP_CHUNKS * CHUNK {
        x = 3.58 * x * (1.0 - x);
    }
    let mut a = vec![0i32; MEM_N as usize];
    let mut v = 0i32;
    for s in a.iter_mut() {
        v = (v + 40503) % MEM_N;
        *s = v;
    }
    let (mut p, mut sum) = (0i32, 0i32);
    for _ in 0..MEM_CHUNKS * CHUNK {
        p = a[p as usize];
        sum = sum.wrapping_add(p);
    }
    (program, ((x * 65536.0) as i32) ^ sum)
}

fn main() {
    println!("two-phase workload: FP phase, then pointer-chase phase\n");
    for (name, policy, annotated) in [
        ("pinned-PPE  (no hints)", PlacementPolicy::PinnedPpe, false),
        ("pinned-SPE  (no hints)", PlacementPolicy::PinnedSpe, false),
        (
            "annotation  (@FloatIntensive / @MemoryIntensive)",
            PlacementPolicy::Annotation,
            true,
        ),
        (
            "adaptive    (runtime monitoring only)",
            PlacementPolicy::adaptive(),
            false,
        ),
    ] {
        let (prog, expected) = program(annotated);
        let cfg = VmConfig {
            policy,
            ..VmConfig::default()
        };
        let out = HeraJvm::new(prog, cfg)
            .expect("constructs")
            .run()
            .expect("runs");
        assert_eq!(out.result, Some(Value::I32(expected)), "{name}");
        println!(
            "{name:<50} {:>12} cycles, {:>3} migrations",
            out.stats.wall_cycles, out.stats.migrations
        );
    }
    println!();
    println!("The hinted and monitored runs place each phase on the core type");
    println!("that suits it; the pinned runs pay for their mismatch (paper §3, §6).");
}
