//! Explore the SPE local-store partition: sweep the data/code cache
//! split for each benchmark and print the per-workload optimum — the
//! adaptive-sizing opportunity the paper's §4 points at.
//!
//! ```sh
//! cargo run --release -p hera-examples --example cache_tuning
//! ```

use hera_core::{HeraJvm, PlacementPolicy, VmConfig};
use hera_workloads::Workload;

fn run(w: Workload, data_kb: u32, code_kb: u32) -> u64 {
    let (program, expected) = w.build(6, 0.25);
    let mut cfg = VmConfig {
        policy: PlacementPolicy::PinnedSpe,
        ..VmConfig::default()
    }
    .with_cache_sizes(data_kb << 10, code_kb << 10);
    cfg.cell.num_spes = 6;
    let out = HeraJvm::new(program, cfg)
        .expect("constructs")
        .run()
        .expect("runs");
    assert_eq!(out.result.map(|v| v.as_i32()), Some(expected));
    out.stats.wall_cycles
}

fn main() {
    const BUDGET_KB: u32 = 192; // 256 KiB local store − 64 KiB resident
    println!("sweeping the {BUDGET_KB} KiB cache budget (data + code) per benchmark\n");
    println!(
        "{:<12} {:>10} {:>18} {:>14}",
        "benchmark", "default", "best split", "improvement"
    );
    for w in Workload::ALL {
        let fixed = run(w, 104, 88);
        let mut best = (104u32, fixed);
        for i in 1..BUDGET_KB / 16 {
            let data = i * 16;
            let cycles = run(w, data, BUDGET_KB - data);
            if cycles < best.1 {
                best = (data, cycles);
            }
        }
        println!(
            "{:<12} {:>10} {:>10}K/{:<3}K   {:>12.1}%",
            w.name(),
            fixed,
            best.0,
            BUDGET_KB - best.0,
            100.0 * (1.0 - best.1 as f64 / fixed as f64)
        );
    }
    println!();
    println!("compress wants nearly all the budget as data cache; mpegaudio");
    println!("prefers code. A single fixed split can't satisfy both — the");
    println!("case for the adaptive sizing the paper proposes as future work.");
}
