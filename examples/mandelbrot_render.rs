//! Render the mandelbrot benchmark's output as ASCII art, computed by
//! six guest threads across six simulated SPE cores, and report the
//! speedup over the PPE — a miniature of the paper's Figure 4.
//!
//! ```sh
//! cargo run --release -p hera-examples --example mandelbrot_render
//! ```

use hera_core::{HeraJvm, VmConfig};
use hera_workloads::mandelbrot::{build_program, reference_checksum, Params};

fn main() {
    let p = Params {
        width: 72,
        height: 28,
        max_iter: 48,
        threads: 6,
    };

    // PPE baseline (single core).
    let ppe_p = Params { threads: 1, ..p };
    let ppe = HeraJvm::new(build_program(&ppe_p), VmConfig::pinned_ppe())
        .expect("constructs")
        .run()
        .expect("runs");

    // Six SPEs.
    let vm = HeraJvm::new(build_program(&p), VmConfig::pinned_spe(6)).expect("constructs");
    let out = vm.run().expect("runs");
    assert!(out.is_clean(), "traps: {:?}", out.traps);
    assert_eq!(
        out.result.map(|v| v.as_i32()),
        Some(reference_checksum(&p)),
        "checksum must match the host reference"
    );

    // The image itself lives in guest memory; recompute it host-side for
    // display (bit-identical math).
    let ramp = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
    let (x0, x1, y0, y1) = (-2.25f32, 0.75f32, -1.25f32, 1.25f32);
    let dx = (x1 - x0) / p.width as f32;
    let dy = (y1 - y0) / p.height as f32;
    for y in 0..p.height {
        let ci = y0 + y as f32 * dy;
        let mut line = String::new();
        for x in 0..p.width {
            let cr = x0 + x as f32 * dx;
            let (mut zr, mut zi) = (0f32, 0f32);
            let mut it = 0;
            while it < p.max_iter && zr * zr + zi * zi <= 4.0 {
                let t = zr * zr - zi * zi + cr;
                zi = 2.0 * zr * zi + ci;
                zr = t;
                it += 1;
            }
            let shade = if it >= p.max_iter {
                ' '
            } else {
                ramp[(it as usize * (ramp.len() - 1)) / p.max_iter as usize]
            };
            line.push(shade);
        }
        println!("{line}");
    }

    println!();
    println!("PPE (1 thread):   {:>12} cycles", ppe.stats.wall_cycles);
    println!(
        "6 SPEs (6 threads): {:>10} cycles  → {:.1}x speedup (paper: ~9.4x at 800x600)",
        out.stats.wall_cycles,
        ppe.stats.wall_cycles as f64 / out.stats.wall_cycles as f64
    );
    println!(
        "SPE data-cache hit rate: {:.1}%   code-cache hit rate: {:.1}%",
        out.stats.data_cache.hit_rate() * 100.0,
        out.stats.code_cache.method_hit_rate() * 100.0
    );
}
