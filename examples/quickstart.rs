//! Quickstart: author a small guest program, run it on the simulated
//! Cell under three placements, and read the statistics.
//!
//! ```sh
//! cargo run --release -p hera-examples --example quickstart
//! ```

use hera_core::{HeraJvm, VmConfig};
use hera_frontend::*;
use hera_isa::{ProgramBuilder, Ty};

fn main() {
    // A guest program: sum of the first million square roots, in f32.
    let mut pb = ProgramBuilder::new();
    let cls = pb.add_class("Main", None);
    let main = declare_static(&mut pb, cls, "main", vec![], Some(Ty::Float));
    define(
        &mut pb,
        main,
        vec![],
        vec![
            Stmt::Let("sum".into(), f32c(0.0)),
            for_range(
                "i",
                i32c(1),
                i32c(200_000),
                vec![Stmt::Assign(
                    "sum".into(),
                    add(local("sum"), sqrt(cast(Ty::Float, local("i")))),
                )],
            ),
            Stmt::Return(Some(local("sum"))),
        ],
    )
    .expect("main compiles");
    let program = pb.finish_with_entry("Main", "main").expect("resolves");

    // Run the identical program under three placements.
    for (name, cfg) in [
        ("pinned to the PPE", VmConfig::pinned_ppe()),
        ("pinned to one SPE", VmConfig::pinned_spe(1)),
        ("pinned to six SPEs", VmConfig::pinned_spe(6)),
    ] {
        let vm = HeraJvm::new(program.clone(), cfg).expect("constructs");
        let out = vm.run().expect("runs");
        println!(
            "{name:<20} result = {:?}   wall = {:>12} cycles ({:.2} virtual ms)",
            out.result,
            out.stats.wall_cycles,
            out.stats.wall_millis()
        );
    }
    println!();
    println!("Same result everywhere — that is the point: Hera-JVM hides the");
    println!("processor's heterogeneity behind a homogeneous virtual machine.");
}
