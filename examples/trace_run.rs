//! Trace a run: enable the hera-trace sink, execute mandelbrot on six
//! pinned SPEs, print the per-core summary, and export a Chrome
//! trace-event JSON file loadable in chrome://tracing or Perfetto.
//!
//! ```sh
//! cargo run --release -p hera-examples --example trace_run
//! ```
//!
//! Tracing only observes — it never charges virtual cycles — so the run
//! below finishes at exactly the same cycle count it would untraced.

use hera_core::{HeraJvm, VmConfig};
use hera_workloads::Workload;

fn main() {
    let w = Workload::Mandelbrot;
    let (program, expected) = w.build(6, 0.3);
    let method_names: Vec<String> = program.methods.iter().map(|m| m.name.clone()).collect();

    let cfg = VmConfig::pinned_spe(6).with_tracing();
    let vm = HeraJvm::new(program, cfg).expect("constructs");
    let out = vm.run().expect("runs");
    assert!(out.is_clean());
    assert_eq!(out.result, Some(hera_isa::Value::I32(expected)));

    // Per-core event counts, spans, and the merged metrics registry.
    print!("{}", hera_trace::text_summary(&out.trace));

    // Chrome trace-event export with method ids symbolised to names.
    let json = hera_trace::chrome_trace_json_with(&out.trace, &|m| {
        method_names
            .get(m as usize)
            .cloned()
            .unwrap_or_else(|| format!("m{m}"))
    });
    let path = "trace_run.json";
    std::fs::write(path, &json).expect("write trace json");
    println!();
    println!(
        "wrote {path} ({} bytes, {} events) — open it at https://ui.perfetto.dev",
        json.len(),
        out.trace.event_count()
    );
}
